#!/usr/bin/env python
"""Campaign supervision chaos drills: deadlines, dead-letter, circuit, fsck.

The acceptance drill of the supervision subsystem (PR 10), runnable locally
and in CI::

    PYTHONPATH=src python tools/campaign_chaos.py

1. **Deadline + dead-letter**: a worker whose search wedges forever
   (``REPRO_FAULT_HANG_AT_EVAL``) must be killed at the enforced per-cell
   deadline, audited as ``E_TIMEOUT``, retried, and — once the retry budget
   is exhausted — buried in ``dead-letter.jsonl``.  A fresh worker must
   refuse to claim the buried cell; ``repro campaign --retry-dead`` must
   re-admit it, after which a clean worker finishes it.
2. **Store integrity**: an injected ENOSPC append leaves the store
   byte-identical; an injected torn append and a simulated bit-flip are
   detected by the CRC layer (counted, never served), reported by
   ``repro store fsck``, quarantined by ``--repair``, and the repaired
   store keeps every intact record byte-identical.
3. **Circuit breaker, end to end**: ``repro campaign --executor
   pull-worker`` over cells that time out on every attempt must trip the
   sliding-window breaker, stop the workers claiming, and exit with
   code 4.
4. **Healthy parity**: a supervised campaign over healthy cells stores
   record-identical contents (modulo per-run wall time, and the checksum
   that covers it) and summaries as an unsupervised one.

Exits non-zero with a diagnostic on any violation.
"""

from __future__ import annotations

import errno
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.envelopes import request_fingerprint  # noqa: E402
from repro.campaign import (  # noqa: E402
    CampaignPolicy,
    CampaignSpec,
    CircuitOpenError,
    DeadLetterQueue,
    ShardedRunStore,
    fsck_store,
    run_campaign,
)
from repro.campaign.manifest import CampaignManifest  # noqa: E402
from repro.campaign.supervisor import SUPERVISOR_FILENAME  # noqa: E402
from repro.cli import main as cli_main  # noqa: E402
from repro.resilience import faults  # noqa: E402

SCENARIO = "wifi-3mbps/jetson-tx2-gpu"

#: Budgets small enough that one healthy cell is a second or two.
FAST = dict(
    num_initial=2,
    num_iterations=1,
    candidate_pool_size=16,
    predictor_samples_per_type=40,
)

TIMEOUT_S = 180.0


def _fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def _spawn_worker(
    store_dir: Path, worker_id: str, extra_env: dict = None
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    for name in (
        faults.ENV_HANG_AT_EVAL, faults.ENV_HANG_SECONDS,
        faults.ENV_KILL_AT_EVAL,
    ):
        env.pop(name, None)
    if extra_env:
        env.update(extra_env)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--store", str(store_dir), "--worker-id", worker_id],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _shard_records(store_dir: Path) -> dict:
    """fingerprint -> outcome dict with volatile fields stripped."""
    records = {}
    for path in sorted((store_dir / "shards").glob("*.jsonl")):
        for line in path.read_bytes().splitlines():
            record = json.loads(line)
            outcome = dict(record["outcome"])
            outcome.pop("wall_time_s", None)
            records[record["fingerprint"]] = outcome
    return records


def drill_deadline_and_dead_letter(base: Path) -> int:
    print("[1/4] deadline + dead-letter drill...")
    store_dir = base / "deadline"
    ShardedRunStore(store_dir)
    request = CampaignSpec(
        scenarios=(SCENARIO,), strategies=("random",), seeds=(0,), **FAST
    ).requests()[0]
    fingerprint = request_fingerprint(request)
    policy = CampaignPolicy(
        ttl_s=15.0, poll_s=0.2, max_attempts=2, backoff_base_s=0.2,
        max_backoff_s=1.0, cell_timeout_s=6.0,
    )
    CampaignManifest.from_requests([request], policy=policy).write(store_dir)

    # this worker's search wedges forever at evaluation 1; only the deadline
    # watchdog can get the cell back
    hung = _spawn_worker(store_dir, "hung", extra_env={
        faults.ENV_HANG_AT_EVAL: "1", faults.ENV_HANG_SECONDS: "600",
    })
    try:
        hung.wait(timeout=TIMEOUT_S)
    except subprocess.TimeoutExpired:
        hung.kill()
        return _fail("hung worker was not released by the deadline watchdog")
    if hung.returncode != 0:
        return _fail(f"hung worker exited {hung.returncode}, expected 0 "
                     "(bury the cell and finish)")

    store = ShardedRunStore(store_dir)
    if len(store) != 0:
        return _fail("a wedged cell still produced a stored outcome")
    timeouts = [e for e in store.audit_records() if e.code == "E_TIMEOUT"]
    if len(timeouts) != policy.max_attempts:
        return _fail(f"expected {policy.max_attempts} E_TIMEOUT audit "
                     f"records, found {len(timeouts)}")
    dead_letters = DeadLetterQueue(store_dir)
    if not dead_letters.is_dead(fingerprint):
        return _fail("the poison cell was not dead-lettered")
    chain = dead_letters.envelopes(fingerprint)
    if not chain or not all(e.code == "E_TIMEOUT" for e in chain):
        return _fail(f"dead-letter chain should be E_TIMEOUT envelopes, "
                     f"got {[e.code for e in chain]}")
    print(f"      killed at the {policy.cell_timeout_s:g}s deadline twice, "
          f"buried with a {len(chain)}-envelope chain")

    # a fresh worker must refuse the buried cell and exit with nothing to do
    scavenger = _spawn_worker(store_dir, "scavenger")
    scavenger.wait(timeout=60.0)
    store.refresh()
    if len(store) != 0 or not dead_letters.is_dead(fingerprint):
        return _fail("a fresh worker re-claimed a dead-lettered cell")
    print("      fresh worker refused the buried cell")

    # explicit re-admission, then a clean worker finishes the cell
    code = cli_main(["campaign", "--store", str(store_dir), "--retry-dead"])
    if code != 0:
        return _fail(f"repro campaign --retry-dead exited {code}")
    if dead_letters.is_dead(fingerprint):
        return _fail("--retry-dead did not re-admit the buried cell")
    finisher = _spawn_worker(store_dir, "finisher")
    try:
        finisher.wait(timeout=TIMEOUT_S)
    except subprocess.TimeoutExpired:
        finisher.kill()
        return _fail("clean worker did not finish the re-admitted cell")
    store.refresh()
    if sorted(store.fingerprints()) != [fingerprint]:
        return _fail("re-admitted cell was not executed by the clean worker")
    print("      --retry-dead re-admitted it; clean worker stored the cell")
    return 0


def drill_store_integrity(base: Path) -> int:
    print("[2/4] store-integrity drill (ENOSPC, torn write, bit-flip, fsck)...")
    store_dir = base / "integrity"
    store = ShardedRunStore(store_dir)
    spec = CampaignSpec(
        scenarios=(SCENARIO,), strategies=("random",), seeds=(0, 1), **FAST
    )
    run_campaign(spec, store)
    (shard_path,) = sorted((store_dir / "shards").glob("*.jsonl"))
    pristine = shard_path.read_bytes()
    original_lines = pristine.splitlines(keepends=True)
    if any(b'"crc32"' not in line for line in original_lines):
        return _fail("new sharded records do not carry a crc32 field")
    donor = store.get(sorted(store.fingerprints())[0])

    # ENOSPC: the append fails before a byte lands; the store is untouched
    try:
        with faults.inject(faults.FaultInjector(enospc_appends=1)):
            store.append(donor, fingerprint="chaos-enospc")
        return _fail("injected ENOSPC append did not raise")
    except OSError as error:
        if error.errno != errno.ENOSPC:
            return _fail(f"expected ENOSPC, got {error!r}")
    if shard_path.read_bytes() != pristine:
        return _fail("ENOSPC append modified the shard file")
    print("      ENOSPC append raised; shard byte-identical")

    # torn write: the writer dies half way through its line
    try:
        with faults.inject(faults.FaultInjector(torn_appends=1)):
            store.append(donor, fingerprint="chaos-torn")
        return _fail("injected torn append did not kill the writer")
    except faults.KilledByFault:
        pass
    torn_tail = len(shard_path.read_bytes()) - len(pristine)
    if torn_tail <= 0:
        return _fail("torn append left no partial line behind")

    # bit-flip: corrupt one digit of the first record's checksum field so
    # the line still parses but the CRC disagrees (simulated disk rot)
    flipped = bytearray(original_lines[0])
    anchor = flipped.index(b'"crc32":') + len(b'"crc32":')
    while not chr(flipped[anchor]).isdigit():
        anchor += 1
    while chr(flipped[anchor]).isdigit():
        anchor += 1
    anchor -= 1  # last digit: a leading zero would be invalid JSON instead
    flipped[anchor] = ord("1") if flipped[anchor] == ord("0") else ord("0")
    shard_path.write_bytes(bytes(flipped) + b"".join(original_lines[1:])
                           + shard_path.read_bytes()[len(pristine):])

    reopened = ShardedRunStore(store_dir)
    if len(reopened) != 1:
        return _fail(f"store served {len(reopened)} records; the rotten one "
                     "must be skipped")
    if reopened.summary()["crc_mismatches"] != 1:
        return _fail("the scan did not count the CRC mismatch")

    report = fsck_store(store_dir)
    if report["clean"] or report["crc_mismatch"] != 1 or \
            report["torn_bytes"] != torn_tail or report["intact"] != 1:
        return _fail(f"fsck verify misclassified the damage: {report}")
    print(f"      fsck: {report['intact']} intact, 1 checksum mismatch, "
          f"{report['torn_bytes']} torn byte(s) detected")

    report = fsck_store(store_dir, repair=True)
    if not report["repaired"] or report["quarantined_lines"] != 2:
        return _fail(f"fsck --repair did not quarantine both bad lines: "
                     f"{report}")
    if shard_path.read_bytes() != original_lines[1]:
        return _fail("repair did not keep the intact record byte-identical")
    quarantined = list((store_dir / "quarantine").iterdir())
    if not quarantined:
        return _fail("repair left no quarantine sidecar behind")
    after = fsck_store(store_dir)
    if not after["clean"]:
        return _fail(f"store still unclean after repair: {after}")
    repaired = ShardedRunStore(store_dir)
    if len(repaired) != 1 or repaired.summary()["crc_mismatches"] != 0:
        return _fail("repaired store does not scan clean")
    print(f"      repair quarantined 2 line(s) into "
          f"{quarantined[0].name}; intact record byte-identical")
    return 0


def drill_circuit_breaker(base: Path) -> int:
    print("[3/4] circuit-breaker drill (campaign CLI must exit 4)...")
    store_dir = base / "circuit"

    # in-process first: a request batch that fails on every cell must trip
    # the in-memory breaker of the serial executor
    from repro.api.scenario import Scenario
    good = CampaignSpec(
        scenarios=(SCENARIO,), strategies=("random",), seeds=(0, 1, 2, 3),
        **FAST,
    ).requests()
    ghosts = [
        request.replace(
            scenario=Scenario(name="ghost/nowhere", device="ghost-device")
        )
        for request in good
    ]
    policy = CampaignPolicy(circuit_window=2, circuit_threshold=1.0,
                            circuit_cooldown_s=60.0, on_error="continue")
    try:
        run_campaign(ghosts, ShardedRunStore(store_dir / "serial"),
                     on_error="continue", policy=policy)
        return _fail("serial campaign over failing cells did not trip the "
                     "breaker")
    except CircuitOpenError as error:
        print(f"      serial executor tripped in-memory: {error}")

    # end to end: every pull-worker attempt times out (wedged search +
    # 3s deadline); two failures fill the window, the shared breaker opens,
    # and the campaign CLI must exit with code 4
    cli_dir = store_dir / "pull"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env[faults.ENV_HANG_AT_EVAL] = "1"
    env[faults.ENV_HANG_SECONDS] = "600"
    campaign = subprocess.run(
        [sys.executable, "-m", "repro", "campaign",
         "--store", str(cli_dir), "--scenario", SCENARIO,
         "--strategy", "random", "--seed", "0", "--seed", "1",
         "--executor", "pull-worker", "--workers", "2", "--sharded",
         "--cell-timeout", "3", "--circuit-threshold", "1.0",
         "--circuit-window", "2", "--circuit-cooldown", "60",
         "--max-attempts", "3", "--on-error", "continue",
         "--ttl", "15", "--poll", "0.2", "--backoff", "0.2",
         "--num-initial", "2", "--num-iterations", "1",
         "--pool-size", "16", "--predictor-samples", "40", "--quiet"],
        env=env, capture_output=True, text=True, timeout=TIMEOUT_S,
    )
    if campaign.returncode != 4:
        return _fail(f"campaign CLI exited {campaign.returncode}, expected "
                     f"4 (circuit open)\nstderr: {campaign.stderr}")
    state = json.loads((cli_dir / SUPERVISOR_FILENAME).read_text())
    if state["circuit"]["state"] != "open":
        return _fail(f"supervisor.json records circuit state "
                     f"{state['circuit']['state']!r}, expected 'open'")
    transitions = state["circuit"].get("transitions", [])
    print(f"      pull-worker campaign exited 4; shared breaker open after "
          f"{state.get('timeout_kills', 0)} timeout kill(s), "
          f"transitions: {[t[-1] for t in transitions]}")
    return 0


def drill_healthy_parity(base: Path) -> int:
    print("[4/4] healthy-parity drill (supervision must be inert)...")
    spec = CampaignSpec(
        scenarios=(SCENARIO,), strategies=("random",), seeds=(0, 1), **FAST
    )
    plain_dir, supervised_dir = base / "plain", base / "supervised"
    plain = run_campaign(spec, ShardedRunStore(plain_dir))
    policy = CampaignPolicy(cell_timeout_s=120.0, circuit_window=4,
                            circuit_threshold=1.0)
    supervised = run_campaign(
        spec, ShardedRunStore(supervised_dir), policy=policy
    )
    if supervised.summary()["failed"] or plain.summary()["failed"]:
        return _fail("healthy campaign reported failures")
    if _shard_records(plain_dir) != _shard_records(supervised_dir):
        return _fail("supervised store contents diverge from unsupervised "
                     "(beyond wall time)")
    volatile = {"total_wall_time_s", "directory"}
    plain_summary = {k: v for k, v in ShardedRunStore(plain_dir).summary().items()
                     if k not in volatile}
    supervised_summary = {
        k: v for k, v in ShardedRunStore(supervised_dir).summary().items()
        if k not in volatile
    }
    if plain_summary != supervised_summary:
        return _fail(f"store summaries diverge:\n{plain_summary}\n"
                     f"{supervised_summary}")
    if supervised.summary()["circuit_state"] not in ("closed", "disabled"):
        return _fail("healthy supervised campaign did not keep the breaker "
                     "closed")
    if supervised.summary()["timeout_kills"] or supervised.summary()["dead_lettered"]:
        return _fail("healthy supervised campaign recorded supervision events")
    print("      supervised and unsupervised stores identical "
          "(modulo wall time); breaker stayed closed")
    return 0


def main() -> int:
    base = Path(tempfile.mkdtemp(prefix="repro-campaign-chaos-"))
    print(f"workspace: {base}")
    for drill in (
        drill_deadline_and_dead_letter,
        drill_store_integrity,
        drill_circuit_breaker,
        drill_healthy_parity,
    ):
        code = drill(base)
        if code:
            return code
    print("OK: deadlines enforced, poison cells dead-lettered and "
          "re-admittable, circuit breaker trips to exit 4, store rot "
          "detected/quarantined/repaired, healthy supervision inert")
    return 0


if __name__ == "__main__":
    sys.exit(main())
