#!/usr/bin/env python
"""Distributed campaign smoke test: crash a worker mid-run, verify parity.

The acceptance drill of the pull-worker protocol, runnable locally and in
CI::

    PYTHONPATH=src python tools/distributed_smoke.py

1. Run a small grid **serially** into a single-file store (the reference).
2. Publish the same grid as a manifest in a **sharded** store directory and
   start two ``repro worker`` subprocesses against it.
3. As soon as the first outcome lands, **SIGKILL one worker** — whatever
   lease it holds goes stale and must be reclaimed by the survivor after
   the TTL.
4. Wait for the survivor to drain the manifest, then start one more worker
   (**resume**): it must find nothing to do.
5. Assert the sharded store holds exactly the serial fingerprint set, every
   record exactly once at the raw-line level, and per-cell candidate
   metrics matching the serial run (to 6 decimals — executors may differ in
   last-ulp float noise from engine-cache warm-up order).
6. Mid-search resume drill: publish a one-cell campaign with
   ``checkpoint_every=1`` and a worker that SIGKILLs itself mid-search
   (``REPRO_FAULT_KILL_AT_EVAL``); a clean worker must then finish the
   cell by **resuming from the checkpoint** — its stored outcome records
   ``H_RESUMED``, proving it did not restart from evaluation zero.

Exits non-zero with a diagnostic on any violation.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import (  # noqa: E402
    CampaignSpec,
    RunStore,
    ShardedRunStore,
    run_campaign,
)
from repro.campaign.manifest import CampaignManifest  # noqa: E402

SPEC = CampaignSpec(
    scenarios=("wifi-3mbps/jetson-tx2-gpu",),
    strategies=("random",),
    seeds=(0, 1, 2, 3),
    num_initial=4,
    num_iterations=2,
    candidate_pool_size=16,
    predictor_samples_per_type=40,
)

TTL_S = 3.0
TIMEOUT_S = 180.0


def _spawn_worker(
    store_dir: Path, worker_id: str, extra_env: dict = None
) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    if extra_env:
        env.update(extra_env)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--store", str(store_dir), "--worker-id", worker_id],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _metric_rows(store):
    rows = {}
    for fingerprint in store.fingerprints():
        outcome = store.get(fingerprint)
        rows[fingerprint] = [
            (round(c.error_percent, 6), round(c.latency_s, 6), round(c.energy_j, 6))
            for c in outcome.candidates
        ]
    return rows


def main() -> int:
    import tempfile

    base = Path(tempfile.mkdtemp(prefix="repro-distributed-smoke-"))
    print(f"workspace: {base}")

    print(f"[1/6] serial reference run ({SPEC.num_cells} cells)...")
    serial = RunStore(base / "serial")
    result = run_campaign(SPEC, serial)
    print(f"      {len(result.executed)} cells in {result.wall_time_s:.1f}s")

    print("[2/6] publishing manifest, starting 2 pull workers...")
    store_dir = base / "shared"
    ShardedRunStore(store_dir)
    CampaignManifest.from_requests(
        SPEC.requests(), ttl_s=TTL_S, poll_s=0.2, max_attempts=3,
    ).write(store_dir)
    victim = _spawn_worker(store_dir, "victim")
    survivor = _spawn_worker(store_dir, "survivor")

    print("[3/6] waiting for first stored cell, then killing one worker...")
    observer = ShardedRunStore(store_dir)
    deadline = time.time() + TIMEOUT_S
    while len(observer) == 0:
        if time.time() > deadline:
            print("FAIL: no cell stored before timeout", file=sys.stderr)
            return 1
        time.sleep(0.1)
        observer.refresh()
    victim.send_signal(signal.SIGKILL)
    victim.wait()
    print(f"      killed worker 'victim' with {len(observer)} cell(s) stored")

    print("[4/6] waiting for the survivor to drain the manifest...")
    try:
        survivor.wait(timeout=max(1.0, deadline - time.time()))
    except subprocess.TimeoutExpired:
        survivor.kill()
        print("FAIL: surviving worker did not finish in time", file=sys.stderr)
        return 1
    resume = _spawn_worker(store_dir, "resume")
    resume.wait(timeout=60.0)

    print("[5/6] verifying parity with the serial run...")
    final = ShardedRunStore(store_dir)
    failures = []
    if set(final.fingerprints()) != set(serial.fingerprints()):
        failures.append(
            f"fingerprint sets differ: {sorted(final.fingerprints())} vs "
            f"{sorted(serial.fingerprints())}"
        )
    raw_lines = sum(
        sum(1 for _ in path.open("rb"))
        for path in (store_dir / "shards").glob("*.jsonl")
    )
    if raw_lines != SPEC.num_cells:
        failures.append(
            f"expected {SPEC.num_cells} raw shard lines (exactly-once), "
            f"found {raw_lines}"
        )
    if _metric_rows(final) != _metric_rows(serial):
        failures.append("per-cell candidate metrics diverge from the serial run")
    leftover_leases = list((store_dir / "leases").glob("*.lease"))
    # the victim's lease may remain if it died holding one and every cell
    # was finished by the survivor via other claims — stale but harmless;
    # only *fresh* leases after completion indicate a protocol bug
    reclaims = sum(
        1 for envelope in final.audit_records() if envelope.attempt > 1
    )
    summary = final.summary()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"OK: {summary['num_runs']} cells exactly-once across "
        f"{summary['num_shards']} shard(s); worker crash survived "
        f"({len(leftover_leases)} stale lease file(s), {reclaims} audited "
        f"retries); resume was a no-op"
    )

    print("[6/6] mid-search resume drill (kill inside a search, resume from "
          "checkpoint)...")
    chaos_dir = base / "chaos"
    ShardedRunStore(chaos_dir)
    chaos_spec = CampaignSpec(
        scenarios=("wifi-3mbps/jetson-tx2-gpu",),
        strategies=("lens",),
        seeds=(0,),
        num_initial=2,
        num_iterations=4,
        candidate_pool_size=16,
        predictor_samples_per_type=40,
    )
    CampaignManifest.from_requests(
        chaos_spec.requests(), ttl_s=TTL_S, poll_s=0.2, max_attempts=3,
        checkpoint_every=1,
    ).write(chaos_dir)
    # this worker SIGKILLs itself after 3 of the cell's 6 evaluations
    doomed = _spawn_worker(
        chaos_dir, "doomed", extra_env={"REPRO_FAULT_KILL_AT_EVAL": "3"}
    )
    doomed.wait(timeout=120.0)
    if doomed.returncode != -9:
        print(f"FAIL: doomed worker exited {doomed.returncode}, expected "
              "SIGKILL (-9)", file=sys.stderr)
        return 1
    checkpoint_files = list((chaos_dir / "checkpoints").glob("*/checkpoint.json"))
    if not checkpoint_files:
        print("FAIL: the killed worker left no checkpoint behind", file=sys.stderr)
        return 1
    finisher = _spawn_worker(chaos_dir, "finisher")
    try:
        finisher.wait(timeout=120.0)
    except subprocess.TimeoutExpired:
        finisher.kill()
        print("FAIL: finishing worker did not drain the chaos manifest",
              file=sys.stderr)
        return 1
    chaos_store = ShardedRunStore(chaos_dir)
    if len(chaos_store) != 1:
        print(f"FAIL: chaos store holds {len(chaos_store)} cells, expected 1",
              file=sys.stderr)
        return 1
    (outcome,) = [chaos_store.get(fp) for fp in chaos_store.fingerprints()]
    resumed_events = outcome.health.get("H_RESUMED", 0)
    if resumed_events < 1:
        print(f"FAIL: stored outcome records no H_RESUMED — the finisher "
              f"restarted from evaluation zero (health: {outcome.health})",
              file=sys.stderr)
        return 1
    leftover_checkpoints = list(
        (chaos_dir / "checkpoints").glob("*/checkpoint.json")
    )
    if leftover_checkpoints:
        print(f"FAIL: checkpoint not discarded after the cell was stored: "
              f"{leftover_checkpoints}", file=sys.stderr)
        return 1
    print(
        f"OK: killed worker left a checkpoint, finisher resumed mid-search "
        f"(H_RESUMED={resumed_events}, health: {outcome.health}) and "
        f"discarded it after storing the cell"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
