#!/usr/bin/env python
"""Search chaos drill: kill a search mid-run, resume it, inject failures.

The acceptance drill of the resilience layer (``repro.resilience``),
runnable locally and in CI::

    PYTHONPATH=src python tools/search_chaos.py

1. Run one search **uninterrupted** (the golden reference).
2. Run the same request in a subprocess with a checkpoint directory and
   ``REPRO_FAULT_KILL_AT_EVAL`` set — the process SIGKILLs itself
   mid-search, leaving a partial checkpoint behind.
3. **Resume** from that checkpoint (fresh process state, fresh engine) and
   assert the outcome is bitwise-identical to the golden run — same
   candidate sequence, same fronts, same fingerprint — with ``H_RESUMED``
   recorded in its health counters.
4. Inject **Cholesky failures** (``LinAlgError``) and assert the search
   completes with the degradation ladder recorded in the health log
   instead of raising.
5. Inject **NaN objectives** and assert the poisoned evaluations are
   quarantined while the search still completes its budget.

Exits non-zero with a diagnostic on any violation.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.engine import EvaluationEngine  # noqa: E402
from repro.api.session import run_search  # noqa: E402
from repro.resilience import FaultInjector, SearchCheckpoint  # noqa: E402
from repro.resilience import faults  # noqa: E402

#: One small-but-real search: 4 init + 6 BO = 10 evaluations.
REQUEST = dict(
    strategy="lens",
    scenario="wifi-3mbps/jetson-tx2-gpu",
    search_space="resnet-v1",
    num_initial=4,
    num_iterations=6,
    candidate_pool_size=16,
    predictor_samples_per_type=40,
    seed=11,
)
CHECKPOINT_EVERY = 2
KILL_AT_EVAL = 7  # mid-search: after the BO phase has begun

#: Ladder rungs that prove degradation (as opposed to checkpoint traffic).
LADDER_CODES = (
    "H_JITTER_ESCALATED",
    "H_EXACT_REFIT",
    "H_HETEROGENEOUS_FALLBACK",
    "H_RANDOM_ACQUISITION",
)


def _comparable(outcome) -> dict:
    """The deterministic part of an outcome: everything except timing,
    cache statistics and the health counters themselves."""
    payload = outcome.to_dict()
    for volatile in ("wall_time_s", "engine_stats", "health"):
        payload.pop(volatile, None)
    return payload


def _run_crash_child(checkpoint_dir: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_FAULT_KILL_AT_EVAL"] = str(KILL_AT_EVAL)
    child = (
        "import json, sys\n"
        "from repro.api.session import run_search\n"
        "request = json.loads(sys.argv[1])\n"
        f"run_search(checkpoint_dir=sys.argv[2], checkpoint_every={CHECKPOINT_EVERY}, **request)\n"
        "sys.exit(3)  # unreachable: the injected kill fires first\n"
    )
    return subprocess.run(
        [sys.executable, "-c", child, json.dumps(REQUEST), str(checkpoint_dir)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
    )


def main() -> int:
    import tempfile

    base = Path(tempfile.mkdtemp(prefix="repro-search-chaos-"))
    checkpoints = base / "checkpoints"
    failures = []
    print(f"workspace: {base}")

    print("[1/5] golden uninterrupted run...")
    golden = run_search(engine=EvaluationEngine(), **REQUEST)
    fingerprint = golden.request.fingerprint()
    print(f"      {len(golden)} candidates, fingerprint {fingerprint}")

    print(f"[2/5] crash run: SIGKILL after evaluation {KILL_AT_EVAL}...")
    crashed = _run_crash_child(checkpoints)
    if crashed.returncode != -9:
        failures.append(
            f"crash child exited {crashed.returncode}, expected SIGKILL (-9); "
            f"stderr: {crashed.stderr.decode(errors='replace')[-500:]}"
        )
    cell_dir = SearchCheckpoint.cell_dir(checkpoints, fingerprint)
    partial = SearchCheckpoint.load(cell_dir)
    if partial is None:
        failures.append("no checkpoint survived the crash")
    else:
        print(
            f"      checkpoint survived with {partial.num_evaluations} "
            f"evaluation(s) (complete={partial.complete})"
        )
        if partial.complete or partial.num_evaluations == 0:
            failures.append(
                f"expected a *partial* checkpoint, got "
                f"{partial.num_evaluations} records, complete={partial.complete}"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    print("[3/5] resuming from the partial checkpoint...")
    resumed = run_search(
        engine=EvaluationEngine(),
        checkpoint_dir=checkpoints,
        checkpoint_every=CHECKPOINT_EVERY,
        **REQUEST,
    )
    if not resumed.health.get("H_RESUMED"):
        failures.append(f"resumed run recorded no H_RESUMED: {resumed.health}")
    if _comparable(resumed) != _comparable(golden):
        failures.append("resumed outcome is not bitwise-identical to the golden run")
    else:
        print(
            f"      bitwise parity OK ({len(resumed)} candidates); "
            f"health: {resumed.health}"
        )

    print("[4/5] LinAlgError injection: the degradation ladder must absorb it...")
    with faults.inject(FaultInjector(linalg_failures=50)):
        degraded = run_search(engine=EvaluationEngine(), **REQUEST)
    ladder_events = {c: degraded.health.get(c, 0) for c in LADDER_CODES}
    if sum(ladder_events.values()) == 0:
        failures.append(
            f"LinAlg injection left no ladder events in health: {degraded.health}"
        )
    if len(degraded) == 0:
        failures.append("LinAlg-degraded search produced no candidates")
    print(f"      completed with {dict((c, n) for c, n in ladder_events.items() if n)}")

    print("[5/5] NaN-objective injection: poisoned evaluations must be quarantined...")
    nan_indices = (2, 5)
    with faults.inject(FaultInjector(nan_evaluations=nan_indices)):
        poisoned = run_search(engine=EvaluationEngine(), **REQUEST)
    quarantined = poisoned.health.get("H_OBJECTIVE_QUARANTINED", 0)
    if quarantined != len(nan_indices):
        failures.append(
            f"expected {len(nan_indices)} quarantined evaluations, "
            f"health says {quarantined}: {poisoned.health}"
        )
    expected = REQUEST["num_initial"] + REQUEST["num_iterations"] - len(nan_indices)
    if len(poisoned) != expected:
        failures.append(
            f"NaN-poisoned search kept {len(poisoned)} candidates, "
            f"expected {expected}"
        )
    print(f"      completed with {quarantined} quarantined evaluation(s)")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "OK: kill/resume bitwise parity, LinAlg degradation absorbed, "
        "NaN evaluations quarantined"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
