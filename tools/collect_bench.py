#!/usr/bin/env python
"""Aggregate benchmark result payloads into one ``BENCH_summary.json``.

Every benchmark module under ``benchmarks/`` writes a machine payload into
``benchmarks/results/<name>.json``.  This tool collects them into a single
trajectory file with a headline section (the speedups and parity figures the
CI smoke job and the docs quote), so one artifact tracks the performance
story across runs::

    PYTHONPATH=src python tools/collect_bench.py
    PYTHONPATH=src python tools/collect_bench.py --results-dir benchmarks/results \
        --output benchmarks/results/BENCH_summary.json

The summary is deterministic for a given set of inputs (benchmarks are
sorted by name) and safe to regenerate at any time; it never fails on
missing benchmarks — whatever is present is aggregated.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.utils.serialization import dump_json  # noqa: E402

#: (benchmark name, payload key, headline key) triples surfaced at top level.
HEADLINE_FIELDS = (
    ("gp_hotpath", "search300_speedup_vs_legacy", "gp_search300_speedup"),
    ("gp_resilience_overhead", "overhead_fraction", "gp_health_overhead_fraction"),
    ("gp_resilience_overhead", "health_events", "gp_health_events_healthy_run"),
    ("eval_batch", "speedup", "eval_batch_speedup"),
    ("eval_batch", "max_divergence", "eval_batch_parity"),
    ("eval_batch", "batched_us_per_candidate", "eval_batch_us_per_candidate"),
    ("engine_cache", "speedup", "engine_cache_speedup"),
    ("pareto_mask_smoke", "elapsed_s", "pareto_50k_elapsed_s"),
    ("campaign_store_index", "index_writes_per_append", "store_index_writes_per_append"),
    ("campaign_store_index", "appends_per_s", "store_appends_per_s"),
    ("campaign_distributed", "pull_worker_wall_s", "distributed_pull_wall_s"),
    ("campaign_distributed", "fingerprints_match", "distributed_parity"),
    ("campaign_supervisor", "supervisor_overhead_fraction",
     "campaign_supervisor_overhead"),
    ("campaign_supervisor", "supervised_claims_per_s",
     "campaign_supervised_claims_per_s"),
    ("epdc", "hv_ratio_epdc_vs_ts", "epdc_hv_ratio_vs_ts"),
    ("epdc", "golden_parity", "epdc_golden_parity"),
    ("serving", "speedup", "serving_speedup"),
    ("serving", "estimate_divergence", "serving_parity"),
    ("serving", "decision_mismatches", "serving_decision_mismatches"),
    ("serving", "decisions_per_s", "serving_decisions_per_s"),
)


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=REPO_ROOT / "benchmarks" / "results",
        help="directory holding the per-benchmark *.json payloads",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="summary path (default: <results-dir>/BENCH_summary.json)",
    )
    return parser.parse_args(argv)


def collect(results_dir: Path) -> dict:
    """Merge every ``<name>.json`` payload under ``results_dir``."""
    benchmarks = {}
    for path in sorted(results_dir.glob("*.json")):
        if path.name == "BENCH_summary.json":
            continue
        try:
            benchmarks[path.stem] = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            benchmarks[path.stem] = {"error": f"unreadable payload: {error}"}
    headline = {}
    for benchmark, payload_key, headline_key in HEADLINE_FIELDS:
        payload = benchmarks.get(benchmark)
        if isinstance(payload, dict) and payload.get(payload_key) is not None:
            headline[headline_key] = payload[payload_key]
    return {
        "schema": 1,
        "benchmark_count": len(benchmarks),
        "headline": headline,
        "benchmarks": benchmarks,
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    results_dir = args.results_dir
    if not results_dir.is_dir():
        print(f"no results directory at {results_dir}; nothing to aggregate")
        return 0
    summary = collect(results_dir)
    output = args.output or results_dir / "BENCH_summary.json"
    dump_json(summary, output)
    names = ", ".join(sorted(summary["benchmarks"])) or "none"
    print(
        f"aggregated {summary['benchmark_count']} benchmark payload(s) "
        f"({names}) -> {output}"
    )
    for key, value in summary["headline"].items():
        print(f"  {key}: {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
