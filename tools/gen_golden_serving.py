#!/usr/bin/env python
"""Regenerate ``tests/data/golden_serving_traces.json``.

The golden file pins the *scalar* runtime path's behaviour — trace values,
``simulate_runtime`` switch counts and cumulative metrics, and the
per-sample decision sequence of a memoryless tracker — for one wifi, one
lte and one 3g replay whose trace straddles the model's switching
threshold.  ``tests/test_serving_golden.py`` then holds both the scalar
path and the vectorized :class:`repro.serving.ServingSession` to these
sequences, so any drift in either path (or in the trace generator) fails
loudly.

Only rerun this when the scalar runtime semantics intentionally change::

    PYTHONPATH=src python tools/gen_golden_serving.py
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.runtime import ThresholdAnalysis, simulate_runtime  # noqa: E402
from repro.partition.deployment import DeploymentMetrics, DeploymentOption  # noqa: E402
from repro.utils.serialization import dump_json  # noqa: E402
from repro.wireless.power_models import RadioPowerModel  # noqa: E402
from repro.wireless.traces import generate_lte_trace  # noqa: E402

OUTPUT = REPO_ROOT / "tests" / "data" / "golden_serving_traces.json"

#: The fixed option set shared with tests/test_serving_golden.py.
ROUND_TRIP_S = 0.01


def build_options():
    edge = DeploymentMetrics(
        option=DeploymentOption.all_edge(),
        latency_s=0.04, energy_j=0.28,
        edge_latency_s=0.04, edge_energy_j=0.28,
        comm_latency_s=0.0, comm_energy_j=0.0, transferred_bytes=0.0,
    )
    split = DeploymentMetrics(
        option=DeploymentOption.split_after(7, "pool5"),
        latency_s=0.0, energy_j=0.0,
        edge_latency_s=0.015, edge_energy_j=0.16,
        comm_latency_s=0.0, comm_energy_j=0.0, transferred_bytes=36864.0,
    )
    cloud = DeploymentMetrics(
        option=DeploymentOption.all_cloud(),
        latency_s=0.0, energy_j=0.0,
        edge_latency_s=0.0, edge_energy_j=0.0,
        comm_latency_s=0.0, comm_energy_j=0.0, transferred_bytes=150528.0,
    )
    return [edge, split, cloud]


#: (name, technology, metric, trace seed, trace mean multiplier).  The mean
#: is the analysis' largest pairwise threshold scaled by the multiplier, so
#: every replay genuinely crosses thresholds.
CASES = (
    ("wifi", "wifi", "energy", 11, 1.0),
    ("lte", "lte", "latency", 12, 1.0),
    ("3g", "3g", "latency", 13, 0.8),
)


def main() -> int:
    cases = []
    for name, technology, metric, seed, mean_scale in CASES:
        analysis = ThresholdAnalysis(
            options=build_options(),
            power_model=RadioPowerModel.for_technology(technology),
            round_trip_s=ROUND_TRIP_S,
            metric=metric,
        )
        crossings = [t for t in analysis.thresholds().values() if t]
        mean_mbps = max(crossings) * mean_scale
        trace = generate_lte_trace(
            num_samples=40, mean_mbps=mean_mbps, seed=seed,
            name=f"golden-{name}",
        )
        comparison = simulate_runtime(analysis, trace)
        # Memoryless-tracker decision sequence: the scalar reference the
        # vectorized ServingSession must reproduce label-for-label.
        decisions = [
            analysis.best_option(s.uplink_mbps).option.label for s in trace
        ]
        assert comparison.num_switches > 0, f"{name}: trace never switches"
        cases.append({
            "name": name,
            "technology": technology,
            "metric": metric,
            "round_trip_s": ROUND_TRIP_S,
            "trace_seed": seed,
            "trace_mean_mbps": mean_mbps,
            "uplinks_mbps": trace.uplinks_mbps.tolist(),
            "num_switches": comparison.num_switches,
            "cumulative": comparison.cumulative,
            "decisions": decisions,
        })
        print(f"{name}: mean {mean_mbps:.3f} Mbps, "
              f"{comparison.num_switches} switches")
    dump_json({"schema": 1, "cases": cases}, OUTPUT)
    print(f"golden data written to {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
