#!/usr/bin/env python
"""Fail on broken intra-repo links in the documentation set.

Scans ``README.md`` and every ``docs/**/*.md`` for Markdown links and image
references, resolves relative targets against the containing file, and exits
non-zero listing every target that does not exist.  External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#section``) are
skipped; a ``path#fragment`` link is checked for the path only.

Run from anywhere::

    python tools/check_docs_links.py

Used by the CI docs job and by ``tests/test_docs_links.py``, so a broken
link fails both the docs workflow and the tier-1 suite.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline Markdown links/images: [text](target) / ![alt](target).
_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Link targets that are not filesystem paths.
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "#")


def documentation_files(root: Path = REPO_ROOT) -> List[Path]:
    """Every Markdown file the checker covers."""
    files = sorted((root / "docs").rglob("*.md")) if (root / "docs").is_dir() else []
    readme = root / "README.md"
    if readme.exists():
        files.insert(0, readme)
    return files


def iter_links(path: Path) -> Iterator[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every link in one file."""
    in_code_fence = False
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in _LINK_PATTERN.finditer(line):
            yield line_number, match.group(1)


def broken_links(root: Path = REPO_ROOT) -> List[str]:
    """``file:line: target`` for every intra-repo link that does not resolve."""
    problems: List[str] = []
    for path in documentation_files(root):
        for line_number, target in iter_links(path):
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}:{line_number}: broken link "
                    f"-> {target}"
                )
    return problems


def main() -> int:
    files = documentation_files()
    problems = broken_links()
    if problems:
        print("\n".join(problems), file=sys.stderr)
        print(f"{len(problems)} broken link(s) in {len(files)} files",
              file=sys.stderr)
        return 1
    print(f"checked {len(files)} documentation files: all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
