"""EPDC q-batch acquisition: golden parity, throughput, hypervolume at budget.

PR 8 added a front-aware acquisition (``acquisition="epdc"``) and a batched
q-point selection loop to :class:`~repro.optim.mobo.MultiObjectiveBayesianOptimizer`.
This benchmark guards the two claims that rework makes:

* **Parity** — the batched while-loop is a pure superset of the old for-loop:
  with ``batch_size=1`` the legacy strategies (``ts``/``ucb``/``mean``) must
  still walk the *byte-identical* candidate sequences recorded in
  ``tests/data/golden_incremental_sequences.json`` before the rework.  This
  gate is asserted on every run (it is what the CI smoke job enforces).
* **Front quality** — at an equal evaluation budget on the paper's
  ``lens-vgg`` space, an EPDC search with ``q = 4`` candidates per iteration
  should dominate at least as much objective volume as the default Thompson
  sampling search.  Both fronts are scored with the exact 3-D hypervolume
  under one shared reference box (the pooled nadir of both runs, padded 5%).
  The ``hv_epdc >= hv_ts`` floor is only asserted on full-size runs
  (``REPRO_BENCH_FAST=0``) — at smoke budgets the fronts are too small for
  the ordering to be stable, so fast runs record the ratio without gating.

Timing is reported (evaluations/s per strategy, acquisition overhead per
iteration) but never asserted: EPDC pays for its Monte-Carlo front scoring
with extra posterior draws, and the point of q-batching is amortizing that
cost — the numbers document the trade, they are not a race.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from conftest import (
    FAST_MODE,
    NUM_INITIAL,
    NUM_ITERATIONS,
    POOL_SIZE,
    PREDICTOR_SAMPLES,
    SEED,
    save_table,
)

from repro.api import run_search
from repro.api.engine import EvaluationEngine
from repro.optim.mobo import MultiObjectiveBayesianOptimizer
from repro.optim.pareto import hypervolume, pareto_front_mask
from repro.utils.serialization import format_table

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "data"
    / "golden_incremental_sequences.json"
)

#: The three search objectives scored by the shared hypervolume box.
OBJECTIVES = ("error_percent", "latency_s", "energy_j")

#: Candidates selected per EPDC iteration (the q of q-batch selection).
EPDC_BATCH_SIZE = 4

#: Strategies checked against the pre-rework golden sequences.
PARITY_STRATEGIES = ("ts", "ucb", "mean")


# ------------------------------------------------------------------ parity

GRID = 21


def _sample(rng):
    return np.array([rng.integers(0, GRID), rng.integers(0, GRID)])


def _features(candidate):
    return np.asarray(candidate, dtype=float) / (GRID - 1)


def _objectives(candidate):
    x = np.asarray(candidate, dtype=float) / (GRID - 1)
    return np.array([x[0], (1 + x[1]) * (1 - np.sqrt(x[0] / (1 + x[1])))]), {}


def _golden_parity():
    """Replay the pre-rework synthetic searches; count byte-level mismatches."""
    golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))["synthetic"]
    mismatches = 0
    for acquisition in PARITY_STRATEGIES:
        result = MultiObjectiveBayesianOptimizer(
            sample_fn=_sample,
            feature_fn=_features,
            objective_fn=_objectives,
            num_objectives=2,
            num_initial=6,
            num_iterations=12,
            candidate_pool_size=40,
            acquisition=acquisition,
            batch_size=1,
            seed=7,
        ).run()
        candidates = [list(map(int, p.candidate)) for p in result.points]
        if candidates != golden[acquisition]["candidates"]:
            mismatches += 1
    return mismatches


# ------------------------------------------------------- searches at budget


def _search(acquisition, batch_size):
    """One seeded lens-vgg search at the shared benchmark budget."""
    start = time.perf_counter()
    outcome = run_search(
        strategy="lens",
        scenario="wifi-3mbps/jetson-tx2-gpu",
        engine=EvaluationEngine(),
        acquisition=acquisition,
        batch_size=batch_size,
        num_initial=NUM_INITIAL,
        num_iterations=NUM_ITERATIONS,
        candidate_pool_size=POOL_SIZE,
        predictor_samples_per_type=PREDICTOR_SAMPLES,
        seed=SEED,
    )
    return outcome, time.perf_counter() - start


def _shared_reference(matrices, padding=1.05):
    """One reference box enclosing every run's objectives (pooled nadir + 5%)."""
    pooled = np.vstack(matrices)
    return [float(value) * padding for value in pooled.max(axis=0)]


def test_epdc_parity_throughput_and_hypervolume_at_budget():
    """Golden parity every run; epdc(q=4) >= ts hypervolume on full runs."""
    golden_mismatches = _golden_parity()

    runs = {}
    for label, acquisition, batch_size in (
        ("ts", "ts", 1),
        (f"epdc q={EPDC_BATCH_SIZE}", "epdc", EPDC_BATCH_SIZE),
    ):
        runs[label] = _search(acquisition, batch_size)

    matrices = {
        label: outcome.result.objective_matrix(OBJECTIVES)
        for label, (outcome, _) in runs.items()
    }
    reference = _shared_reference(list(matrices.values()))

    rows = []
    budget = NUM_INITIAL + NUM_ITERATIONS
    payload = {
        "fast_mode": FAST_MODE,
        "budget": budget,
        "pool_size": POOL_SIZE,
        "epdc_batch_size": EPDC_BATCH_SIZE,
        "objectives": list(OBJECTIVES),
        "reference": reference,
        "golden_parity_mismatches": golden_mismatches,
        "golden_parity": golden_mismatches == 0,
    }
    volumes = {}
    for label, (outcome, elapsed) in runs.items():
        matrix = matrices[label]
        front = matrix[pareto_front_mask(matrix)]
        volume = hypervolume(front, reference)
        volumes[label] = volume
        evals_per_s = len(outcome) / elapsed if elapsed > 0 else float("inf")
        rows.append(
            [
                label,
                len(outcome),
                int(front.shape[0]),
                round(volume, 4),
                round(elapsed, 1),
                round(evals_per_s, 1),
            ]
        )
        key = "epdc" if label.startswith("epdc") else label
        payload[key] = {
            "evaluations": len(outcome),
            "front_size": int(front.shape[0]),
            "hypervolume": volume,
            "wall_s": elapsed,
            "evals_per_s": evals_per_s,
            "final_front_hypervolume": outcome.front_history.final_hypervolume,
        }

    epdc_label = f"epdc q={EPDC_BATCH_SIZE}"
    hv_ratio = (
        volumes[epdc_label] / volumes["ts"] if volumes["ts"] > 0 else float("inf")
    )
    payload["hv_ratio_epdc_vs_ts"] = hv_ratio

    text = (
        "EPDC q-batch acquisition vs Thompson sampling "
        f"(lens-vgg, budget {budget}, seed {SEED}, "
        f"{'fast' if FAST_MODE else 'full'} mode)\n"
        f"shared 3-D reference box: {[round(v, 4) for v in reference]}, "
        f"golden parity mismatches: {golden_mismatches}\n"
        + format_table(
            rows,
            [
                "strategy",
                "evaluations",
                "front size",
                "hypervolume",
                "wall s",
                "evals/s",
            ],
        )
    )
    print("\n" + text)
    save_table("epdc", text, payload)

    # Assertions come *after* save_table so a failing run still records its
    # figures (the CI job uploads them as an artifact).
    assert golden_mismatches == 0, (
        "the batched acquisition loop changed a legacy strategy's seeded "
        f"candidate sequence ({golden_mismatches} strategy/strategies drifted)"
    )
    for label, (outcome, _) in runs.items():
        assert len(outcome) == budget, f"{label} run missed the budget"
    if not FAST_MODE:
        assert volumes[epdc_label] >= volumes["ts"], (
            "EPDC q-batch selection should dominate at least the Thompson "
            f"sampling volume at equal budget: epdc {volumes[epdc_label]:.4f} "
            f"< ts {volumes['ts']:.4f} (ratio {hv_ratio:.3f})"
        )
