"""Candidate-evaluation hot path: per-candidate scalar loops vs the batched engine.

With the surrogate phase off the critical path (``bench_gp_hotpath.py``), a
search iteration's dominant cost is candidate evaluation: running the
per-layer performance predictors and costing every deployment option under
the scenario's wireless channels.  The seed behaviour evaluated one model at
a time — ``predict_layer`` once per layer per candidate, then a Python loop
over cut points per channel.  The batched engine
(:meth:`repro.api.engine.EvaluationEngine.evaluate_batch`) instead costs a
whole candidate pool as matrices: per-family feature matrices and two
matmuls per family for the predictors, and broadcast prefix-sum/mask
arithmetic across all cut points and channels for the partitioner.

This benchmark replays the evaluation phase of a search — the stream of
candidate pools a 300-evaluation run would cost — two ways:

* ``scalar`` — the per-candidate reference path: a ``predict_layer`` loop
  per candidate plus ``PartitionAnalyzer.evaluate`` per channel (per-layer
  predictions shared across channels, as the engine's scalar path does);
* ``batched`` — ``EvaluationEngine.evaluate_batch`` over each pool with the
  same channels (cold caches, so every candidate is genuinely computed).

Batched-vs-scalar parity (every metric of every deployment option of every
``(candidate, channel)`` pair, plus cut-point sets and option order) is
asserted at <= 1e-9 on every run — the correctness gate the CI smoke job
enforces.  The >= 5x timing floor is only asserted on full-size runs
(``REPRO_BENCH_FAST=0``).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import FAST_MODE, PREDICTOR_SAMPLES, SEED, save_table

from repro.api.engine import EvaluationEngine
from repro.partition.partitioner import PartitionAnalyzer
from repro.wireless.channel import WirelessChannel

#: Candidates per pool (the MOBO loop's init pool / acquisition pool scale).
POOL_SIZE = 16 if FAST_MODE else 32

#: Total candidates replayed: the paper-scale 300-evaluation search budget.
NUM_CANDIDATES = 48 if FAST_MODE else 300

#: Maximum allowed batched-vs-scalar divergence, asserted on every run.
PARITY_TOLERANCE = 1e-9

#: Timing floor for the full-size run (scalar seconds / batched seconds).
SPEEDUP_FLOOR = 5.0

#: Timed repetitions per path; the best run is scored (noise robustness).
REPEATS = 3

#: Metric fields compared per deployment option.
_METRIC_FIELDS = (
    "latency_s",
    "energy_j",
    "edge_latency_s",
    "edge_energy_j",
    "comm_latency_s",
    "comm_energy_j",
    "transferred_bytes",
)


def _channels():
    """The two-channel scenario mix: design-time WiFi plus a fallback LTE."""
    return [
        WirelessChannel.create("wifi", uplink_mbps=3.0, round_trip_s=0.01),
        WirelessChannel.create("lte", uplink_mbps=1.1, round_trip_s=0.05),
    ]


def _sample_pools(space, total, pool_size, seed=SEED):
    """Decoded performance architectures, chunked into candidate pools."""
    rng = np.random.default_rng(seed)
    architectures = [
        space.decode_for_performance(space.sample(rng)) for _ in range(total)
    ]
    for architecture in architectures:
        architecture.summarize()  # pre-warm shape inference for both paths
    return [
        architectures[start : start + pool_size]
        for start in range(0, total, pool_size)
    ]


def _scalar_replay(pools, predictor, channels):
    """The seed path: per-layer predict loop + scalar Algorithm 1 per channel."""
    analyzers = [PartitionAnalyzer(predictor, channel) for channel in channels]
    results = []
    start = time.perf_counter()
    for pool in pools:
        for architecture in pool:
            predictions = tuple(
                predictor.predict_layer(summary)
                for summary in architecture.summarize()
            )
            results.append(
                [
                    analyzer.evaluate(architecture, predictions=predictions)
                    for analyzer in analyzers
                ]
            )
    return time.perf_counter() - start, results


def _batched_replay(pools, predictor, channels):
    """The batched engine path, cold caches (every candidate computed)."""
    engine = EvaluationEngine()
    analyzer = PartitionAnalyzer(predictor, channels[0])
    results = []
    start = time.perf_counter()
    for pool in pools:
        results.extend(engine.evaluate_batch(pool, analyzer, channels=channels))
    return time.perf_counter() - start, results


def _best_of(replay, pools, predictor, channels, repeats=REPEATS):
    """Best wall time over ``repeats`` runs (plus the last run's results).

    Both replays are deterministic — every run computes identical results
    from cold caches — so the fastest run is the least noise-contaminated
    measurement of the same work.
    """
    best = float("inf")
    results = None
    for _ in range(repeats):
        elapsed, results = replay(pools, predictor, channels)
        if elapsed < best:
            best = elapsed
    return best, results


def _max_divergence(scalar_results, batched_results):
    """Worst absolute metric difference across all pairs, options and fields."""
    worst = 0.0
    for scalar_row, batched_row in zip(scalar_results, batched_results):
        for scalar_eval, batched_eval in zip(scalar_row, batched_row):
            assert (
                scalar_eval.partition_point_indices
                == batched_eval.partition_point_indices
            )
            assert [m.option.label for m in scalar_eval.options] == [
                m.option.label for m in batched_eval.options
            ]
            for scalar_metrics, batched_metrics in zip(
                scalar_eval.options, batched_eval.options
            ):
                for field in _METRIC_FIELDS:
                    delta = abs(
                        getattr(scalar_metrics, field)
                        - getattr(batched_metrics, field)
                    )
                    if delta > worst:
                        worst = delta
    return worst


def test_batched_evaluation_speedup_and_parity(search_space, trained_gpu_predictor):
    """Batched pool evaluation must match the scalar path and (full runs) beat it 5x."""
    channels = _channels()
    pools = _sample_pools(search_space, NUM_CANDIDATES, POOL_SIZE)

    # Warm-up (populates BLAS/allocator caches fairly for both paths).
    _batched_replay(pools[:1], trained_gpu_predictor, channels)
    _scalar_replay(pools[:1], trained_gpu_predictor, channels)

    scalar_s, scalar_results = _best_of(
        _scalar_replay, pools, trained_gpu_predictor, channels
    )
    batched_s, batched_results = _best_of(
        _batched_replay, pools, trained_gpu_predictor, channels
    )
    divergence = _max_divergence(scalar_results, batched_results)
    speedup = scalar_s / batched_s if batched_s > 0 else float("inf")

    from repro.utils.serialization import format_table

    per_candidate_scalar = scalar_s / NUM_CANDIDATES * 1e6
    per_candidate_batched = batched_s / NUM_CANDIDATES * 1e6
    text = (
        "Candidate-evaluation hot path — scalar per-candidate loop vs batched engine\n"
        f"({NUM_CANDIDATES} candidates in pools of {POOL_SIZE}, "
        f"{len(channels)} channels, {'fast' if FAST_MODE else 'full'} mode)\n"
        + format_table(
            [
                [
                    NUM_CANDIDATES,
                    POOL_SIZE,
                    len(channels),
                    round(scalar_s * 1e3, 1),
                    round(batched_s * 1e3, 1),
                    round(per_candidate_scalar, 1),
                    round(per_candidate_batched, 1),
                    round(speedup, 1),
                    f"{divergence:.1e}",
                ]
            ],
            [
                "candidates",
                "pool",
                "channels",
                "scalar ms",
                "batched ms",
                "scalar us/cand",
                "batched us/cand",
                "speedup",
                "parity",
            ],
        )
    )
    print("\n" + text)
    save_table(
        "eval_batch",
        text,
        {
            "num_candidates": NUM_CANDIDATES,
            "pool_size": POOL_SIZE,
            "channels": [c.to_dict() for c in channels],
            "fast_mode": FAST_MODE,
            "parity_tolerance": PARITY_TOLERANCE,
            "scalar_s": scalar_s,
            "batched_s": batched_s,
            "scalar_us_per_candidate": per_candidate_scalar,
            "batched_us_per_candidate": per_candidate_batched,
            "speedup": speedup,
            "max_divergence": divergence,
            "speedup_floor": None if FAST_MODE else SPEEDUP_FLOOR,
        },
    )
    # Assertions come *after* save_table so a failing run still records its
    # timings/divergence (the CI job uploads them as an artifact).
    assert divergence <= PARITY_TOLERANCE, (
        "batched evaluation diverged from the scalar reference: "
        f"{divergence:.3e} > {PARITY_TOLERANCE:.0e}"
    )
    if not FAST_MODE:
        assert speedup >= SPEEDUP_FLOOR, (
            "the evaluation phase of a 300-candidate search should be "
            f">= {SPEEDUP_FLOOR:.0f}x faster batched, measured {speedup:.1f}x"
        )


def test_batched_evaluation_graph_aware_parity(trained_gpu_predictor):
    """Skip-edge spaces: batched costing honours graph cut masks exactly."""
    from repro.api.registry import SEARCH_SPACES

    channels = _channels()
    space = SEARCH_SPACES.create("resnet-v1")
    rng = np.random.default_rng(SEED)
    architectures = [
        space.decode_for_performance(space.sample(rng)) for _ in range(8)
    ]
    graphs = [space.partition_graph(a) for a in architectures]
    analyzer = PartitionAnalyzer(trained_gpu_predictor, channels[0])
    batched = analyzer.evaluate_batch(
        architectures, channels=channels, graphs=graphs
    )
    scalar = [
        [
            analyzer.with_channel(channel).evaluate(architecture, graph=graph)
            for channel in channels
        ]
        for architecture, graph in zip(architectures, graphs)
    ]
    divergence = _max_divergence(scalar, batched)
    assert divergence <= PARITY_TOLERANCE
    # Residual candidates must actually exercise the skip-edge mask.
    assert any(not graph.is_linear for graph in graphs)
