"""Evaluation-engine cache: cold vs. warm deployment-sweep timings.

The :class:`~repro.api.engine.EvaluationEngine` memoises per-layer
predictions and per-channel partition evaluations, so a deployment sweep
re-run against a warm engine does dictionary lookups instead of re-running
the predictors and Algorithm 1.  This benchmark times a Fig. 2-style sweep
(two device/radio configurations x a dense throughput grid, AlexNet) against
a cold engine and again against the warmed engine, asserts the cached path
is faster, and emits the timings as JSON.
"""

from __future__ import annotations

import time

from conftest import save_table

from repro.analysis.deployment_sweep import DeploymentConfiguration, sweep_deployments
from repro.api.engine import EvaluationEngine
from repro.utils.serialization import format_table

#: Dense throughput grid (Mbps) — 30 channel evaluations per configuration.
UPLINKS_MBPS = tuple(0.5 + 1.0 * i for i in range(30))

#: Best-of-N timing repetitions to damp scheduler noise.
REPETITIONS = 3


def _time_sweep(alexnet, configurations, engine) -> float:
    start = time.perf_counter()
    rows = sweep_deployments(alexnet, configurations, UPLINKS_MBPS, engine=engine)
    elapsed = time.perf_counter() - start
    assert len(rows) == len(configurations) * len(UPLINKS_MBPS) * 2
    return elapsed


def test_engine_cache_speeds_up_deployment_sweep(alexnet, gpu_oracle, cpu_oracle):
    """Warm-engine sweep must beat the cold-engine sweep it repeats."""
    configurations = [
        DeploymentConfiguration("GPU/WiFi", gpu_oracle, "wifi"),
        DeploymentConfiguration("CPU/LTE", cpu_oracle, "lte"),
    ]

    cold_times = []
    warm_times = []
    stats = {}
    for _ in range(REPETITIONS):
        engine = EvaluationEngine()
        cold_times.append(_time_sweep(alexnet, configurations, engine))
        warm_times.append(_time_sweep(alexnet, configurations, engine))
        stats = engine.stats_dict()

    cold_s = min(cold_times)
    warm_s = min(warm_times)
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    cells = len(configurations) * len(UPLINKS_MBPS)
    rows = [
        ["cold", round(cold_s * 1e3, 3), round(cold_s / cells * 1e6, 1)],
        ["warm", round(warm_s * 1e3, 3), round(warm_s / cells * 1e6, 1)],
    ]
    text = (
        "Evaluation-engine cache — cold vs warm deployment sweep "
        f"(AlexNet, {len(configurations)} configs x {len(UPLINKS_MBPS)} uplinks)\n"
        + format_table(rows, ["engine state", "sweep ms", "us per cell"])
        + f"\nspeedup: {speedup:.1f}x"
    )
    print("\n" + text)
    save_table(
        "engine_cache",
        text,
        {
            "uplinks_mbps": list(UPLINKS_MBPS),
            "configurations": [c.label for c in configurations],
            "repetitions": REPETITIONS,
            "cold_s": cold_times,
            "warm_s": warm_times,
            "best_cold_s": cold_s,
            "best_warm_s": warm_s,
            "speedup": speedup,
            "engine_stats": stats,
        },
    )

    # After one cold pass every (architecture, channel) pair is cached, so the
    # warm pass does no predictor or partition work at all.
    assert stats["partition_hits"] >= cells
    assert warm_s < cold_s, (
        f"cached sweep ({warm_s * 1e3:.2f} ms) should be faster than the cold "
        f"sweep ({cold_s * 1e3:.2f} ms)"
    )
