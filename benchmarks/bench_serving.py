"""Fleet serving hot path: per-client scalar loops vs the vectorized layer.

The paper's runtime adaptation (§IV-E, §V-C) switches one device between
deployment options in O(1) as its uplink drifts.  Served to a fleet, the
seed semantics would run one :class:`~repro.wireless.tracker.ThroughputTracker`
plus one :class:`~repro.core.runtime.DynamicDeploymentController` per client
— a Python loop over every client on every tick.  The serving layer
(:mod:`repro.serving`) advances the whole fleet per tick with array ops:
one EWMA update (:class:`~repro.serving.fleet.FleetTracker`) and one
``searchsorted`` against precomputed dominance thresholds
(:class:`~repro.serving.fleet.FleetController`).

This benchmark replays the same synthetic multi-region workload (including
stalled clients) both ways and asserts:

* **parity, on every run** — bitwise-identical EWMA estimates, identical
  decisions on every ``(tick, client)`` and identical switch totals (the
  correctness gate the CI smoke job enforces);
* **speedup, full runs only** — the vectorized layer must beat the scalar
  loop by >= 5x at 10k clients (``REPRO_BENCH_FAST=0``).
"""

from __future__ import annotations

import time

import numpy as np
from conftest import FAST_MODE, SEED, save_table

from repro.analysis.runtime_eval import select_runtime_options
from repro.core.runtime import DynamicDeploymentController, ThresholdAnalysis
from repro.serving import FleetController, FleetTracker, FleetWorkload
from repro.wireless.channel import WirelessChannel
from repro.wireless.tracker import ThroughputTracker

#: Fleet size: the 10k-client serving scale the acceptance criteria name.
NUM_CLIENTS = 512 if FAST_MODE else 10_000

#: Replay length in ticks.
TICKS = 20 if FAST_MODE else 40

#: EWMA smoothing (non-memoryless, so estimate arithmetic is exercised).
SMOOTHING = 0.6

#: Fraction of client-ticks blanked to NaN (stalled clients -> held decisions).
STALL_PROBABILITY = 0.03

#: Maximum allowed vectorized-vs-scalar divergence, asserted on every run.
PARITY_TOLERANCE = 1e-9

#: Timing floor for the full-size run (scalar seconds / vectorized seconds).
SPEEDUP_FLOOR = 5.0

#: Timed repetitions per path; the best run is scored (noise robustness).
REPEATS = 3


def _build_analysis(search_space, predictor, metric="energy"):
    """A served model's threshold analysis: best split + All-Edge/All-Cloud."""
    channel = WirelessChannel.create("wifi", uplink_mbps=3.0, round_trip_s=0.01)
    rng = np.random.default_rng(SEED)
    architecture = search_space.decode_for_performance(search_space.sample(rng))
    options = select_runtime_options(
        architecture, predictor, channel, metric,
        include_all_cloud=True, include_all_edge=True,
    )
    return ThresholdAnalysis(
        options=options,
        power_model=channel.power_model,
        round_trip_s=channel.round_trip_s,
        metric=metric,
    )


def _build_workload(analysis):
    """A multi-region fleet replay rescaled to straddle the model's threshold.

    Whatever model the predictor seed produces, centring the fleet's median
    throughput on the switching threshold guarantees the replay crosses it —
    otherwise switch-parity would be vacuously true.
    """
    workload = FleetWorkload.synthesize(
        NUM_CLIENTS, TICKS,
        stall_probability=STALL_PROBABILITY,
        seed=SEED,
        name="bench-fleet",
    )
    crossings = [t for t in analysis.thresholds().values() if t]
    if crossings:
        scale = max(crossings) / float(np.nanmedian(workload.uplinks_mbps))
        workload = FleetWorkload(
            workload.uplinks_mbps * scale, workload.regions, workload.name
        )
    return workload


def _scalar_replay(analysis, workload):
    """The seed path: one tracker + controller per client, looped per tick.

    NaN measurements (stalled clients) hold the previous decision, exactly
    as the serving layer does.  ``history_limit=0`` keeps the per-client
    trackers O(1) so the 10k-client replay measures compute, not memory.
    """
    uplinks = workload.uplinks_mbps
    ticks, num_clients = uplinks.shape
    index_of = {id(m): i for i, m in enumerate(analysis.options)}
    controllers = [
        DynamicDeploymentController(
            analysis,
            tracker=ThroughputTracker(smoothing=SMOOTHING, history_limit=0),
        )
        for _ in range(num_clients)
    ]
    decisions = np.full((ticks, num_clients), -1, dtype=np.intp)
    last = [-1] * num_clients
    start = time.perf_counter()
    for tick in range(ticks):
        row = uplinks[tick]
        for client in range(num_clients):
            value = row[client]
            if value != value:  # NaN: no sample this tick -> hold
                decisions[tick, client] = last[client]
                continue
            best = controllers[client].observe_and_select(float(value))
            last[client] = index_of[id(best)]
            decisions[tick, client] = last[client]
    elapsed = time.perf_counter() - start
    estimates = np.array(
        [
            np.nan
            if controller.tracker.estimate_mbps is None
            else controller.tracker.estimate_mbps
            for controller in controllers
        ],
        dtype=np.float64,
    )
    switches = sum(controller.num_switches for controller in controllers)
    return elapsed, estimates, decisions, switches


def _vector_replay(analysis, workload):
    """The serving layer: whole-fleet array ops per tick."""
    uplinks = workload.uplinks_mbps
    ticks, num_clients = uplinks.shape
    tracker = FleetTracker(num_clients, smoothing=SMOOTHING)
    controller = FleetController(analysis, num_clients)
    decisions = np.empty((ticks, num_clients), dtype=np.intp)
    start = time.perf_counter()
    for tick in range(ticks):
        estimates = tracker.observe(uplinks[tick])
        decisions[tick] = controller.decide(estimates)
    elapsed = time.perf_counter() - start
    return elapsed, tracker.estimates_mbps, decisions, controller.num_switches


def _best_of(replay, analysis, workload, repeats=REPEATS):
    """Best wall time over ``repeats`` identical deterministic runs."""
    best = float("inf")
    outputs = None
    for _ in range(repeats):
        elapsed, *rest = replay(analysis, workload)
        if elapsed < best:
            best = elapsed
        outputs = rest
    return (best, *outputs)


def test_fleet_serving_speedup_and_parity(search_space, trained_gpu_predictor):
    """Vectorized serving must match the scalar path and (full runs) beat it 5x."""
    analysis = _build_analysis(search_space, trained_gpu_predictor)
    workload = _build_workload(analysis)

    # Warm-up (fair allocator/BLAS state for both paths).
    small = FleetWorkload.synthesize(8, 3, seed=SEED)
    _vector_replay(analysis, small)
    _scalar_replay(analysis, small)

    scalar_s, scalar_estimates, scalar_decisions, scalar_switches = _best_of(
        _scalar_replay, analysis, workload
    )
    vector_s, vector_estimates, vector_decisions, vector_switches = _best_of(
        _vector_replay, analysis, workload
    )

    both = ~np.isnan(scalar_estimates) & ~np.isnan(vector_estimates)
    nan_agree = bool(
        np.array_equal(np.isnan(scalar_estimates), np.isnan(vector_estimates))
    )
    estimate_divergence = (
        float(np.abs(scalar_estimates[both] - vector_estimates[both]).max())
        if both.any()
        else 0.0
    )
    decision_mismatches = int((scalar_decisions != vector_decisions).sum())
    num_decisions = scalar_decisions.size
    speedup = scalar_s / vector_s if vector_s > 0 else float("inf")

    from repro.utils.serialization import format_table

    text = (
        "Fleet serving hot path — per-client scalar loop vs vectorized layer\n"
        f"({NUM_CLIENTS} clients x {TICKS} ticks, smoothing {SMOOTHING}, "
        f"{'fast' if FAST_MODE else 'full'} mode)\n"
        + format_table(
            [
                [
                    NUM_CLIENTS,
                    TICKS,
                    round(scalar_s * 1e3, 1),
                    round(vector_s * 1e3, 1),
                    round(num_decisions / vector_s / 1e6, 2) if vector_s else 0,
                    round(speedup, 1),
                    f"{estimate_divergence:.1e}",
                    decision_mismatches,
                    scalar_switches,
                ]
            ],
            [
                "clients",
                "ticks",
                "scalar ms",
                "vector ms",
                "Mdec/s",
                "speedup",
                "estimate parity",
                "decision mismatches",
                "switches",
            ],
        )
    )
    print("\n" + text)
    save_table(
        "serving",
        text,
        {
            "num_clients": NUM_CLIENTS,
            "ticks": TICKS,
            "smoothing": SMOOTHING,
            "stall_probability": STALL_PROBABILITY,
            "fast_mode": FAST_MODE,
            "parity_tolerance": PARITY_TOLERANCE,
            "scalar_s": scalar_s,
            "vector_s": vector_s,
            "decisions_per_s": num_decisions / vector_s if vector_s else 0.0,
            "speedup": speedup,
            "estimate_divergence": estimate_divergence,
            "decision_mismatches": decision_mismatches,
            "switches_scalar": scalar_switches,
            "switches_vector": vector_switches,
            "speedup_floor": None if FAST_MODE else SPEEDUP_FLOOR,
        },
    )
    # Assertions come *after* save_table so a failing run still records its
    # timings/divergence (the CI job uploads them as an artifact).
    assert nan_agree, "scalar and vectorized trackers disagree on idle clients"
    assert estimate_divergence <= PARITY_TOLERANCE, (
        "vectorized EWMA estimates diverged from the scalar trackers: "
        f"{estimate_divergence:.3e} > {PARITY_TOLERANCE:.0e}"
    )
    assert decision_mismatches == 0, (
        f"{decision_mismatches}/{num_decisions} fleet decisions differ "
        "from the per-client scalar controllers"
    )
    assert vector_switches == scalar_switches
    if any(analysis.thresholds().values()):
        assert scalar_switches > 0, (
            "the replay never crossed the switching threshold — "
            "switch parity was not exercised"
        )
    if not FAST_MODE:
        assert speedup >= SPEEDUP_FLOOR, (
            f"fleet serving should be >= {SPEEDUP_FLOOR:.0f}x faster "
            f"vectorized at {NUM_CLIENTS} clients, measured {speedup:.1f}x"
        )


def test_decision_methods_agree_at_exact_thresholds(
    search_space, trained_gpu_predictor
):
    """intervals/values/scalar selection agree exactly *at* every threshold."""
    analysis = _build_analysis(search_space, trained_gpu_predictor)
    controller = FleetController(analysis, 1)
    thresholds = [
        t for t in controller.table.thresholds.tolist() if t and t > 0.0
    ]
    if not thresholds:
        return  # no crossovers in range: nothing to probe
    probes = np.array(
        [t * f for t in thresholds for f in (1.0, 1.0 - 1e-12, 1.0 + 1e-12)]
    )
    scalar = [
        analysis.options.index(analysis.best_option(float(p))) for p in probes
    ]
    for method in ("intervals", "values"):
        fleet = FleetController(analysis, probes.size, method=method)
        choice = fleet.decide(probes)
        assert choice.tolist() == scalar, f"method {method!r} broke tie parity"
