"""Campaign fan-out: serial vs parallel execution of one search grid.

Runs the same scenarios x strategies campaign grid serially and across
worker processes into separate run stores, verifies both stores hold the
same fingerprints and report the same per-scenario winners (execution mode
must never change results), and emits the wall-clock comparison as a table.

Speedup depends on grid shape vs core count and on the per-process cost of
retraining predictors (worker processes cannot share the parent's engine
caches), so the timings are reported rather than asserted.
"""

from __future__ import annotations

from conftest import FAST_MODE, save_table

from repro.analysis.reporting import summarize_campaign
from repro.campaign import CampaignSpec, RunStore, run_campaign
from repro.utils.serialization import format_table

SPEC = CampaignSpec(
    scenarios=(
        "wifi-3mbps/jetson-tx2-gpu",
        "lte-3mbps/jetson-tx2-gpu",
        "3g-3mbps/jetson-tx2-cpu",
    ),
    strategies=("lens", "random"),
    seeds=(2021,),
    num_initial=4 if FAST_MODE else 10,
    num_iterations=8 if FAST_MODE else 40,
    candidate_pool_size=16 if FAST_MODE else 64,
    predictor_samples_per_type=40 if FAST_MODE else 200,
)

WORKER_COUNTS = (1, 2, 4)


def _winners(store: RunStore):
    summary = summarize_campaign(store.outcomes())
    return sorted((w.scenario, w.winner) for w in summary.winners)


def test_parallel_campaign_matches_serial(tmp_path):
    """Every worker count produces identical stores; timings are reported."""
    rows = []
    timings = {}
    reference_fingerprints = None
    reference_winners = None
    for workers in WORKER_COUNTS:
        store = RunStore(tmp_path / f"workers-{workers}")
        result = run_campaign(SPEC, store, workers=workers)
        assert len(result.executed) == SPEC.num_cells
        fingerprints = sorted(store.fingerprints())
        winners = _winners(store)
        if reference_fingerprints is None:
            reference_fingerprints, reference_winners = fingerprints, winners
        else:
            assert fingerprints == reference_fingerprints
            assert winners == reference_winners
        timings[workers] = result.wall_time_s
        rows.append([
            workers,
            round(result.wall_time_s, 3),
            round(timings[1] / result.wall_time_s, 2),
        ])

    text = (
        f"Campaign fan-out — {SPEC.num_cells} cells "
        f"({len(SPEC.scenarios)} scenarios x {len(SPEC.strategies)} strategies, "
        f"{SPEC.num_initial}+{SPEC.num_iterations} evaluations per cell)\n"
        + format_table(rows, ["workers", "wall s", "speedup vs serial"])
        + "\nwinners: " + ", ".join(f"{s} -> {w}" for s, w in reference_winners)
    )
    print("\n" + text)
    save_table(
        "campaign_parallel",
        text,
        {
            "spec": SPEC.to_dict(),
            "worker_counts": list(WORKER_COUNTS),
            "wall_time_s": {str(w): t for w, t in timings.items()},
            "winners": [list(pair) for pair in reference_winners],
        },
    )
