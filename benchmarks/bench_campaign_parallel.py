"""Campaign fan-out: serial vs parallel execution of one search grid.

Runs the same scenarios x strategies campaign grid serially and across
worker processes into separate run stores, verifies both stores hold the
same fingerprints and report the same per-scenario winners (execution mode
must never change results), and emits the wall-clock comparison as a table.

Speedup depends on grid shape vs core count and on the per-process cost of
retraining predictors (worker processes cannot share the parent's engine
caches), so the timings are reported rather than asserted.
"""

from __future__ import annotations

from conftest import FAST_MODE, save_table

from repro.analysis.reporting import summarize_campaign
from repro.campaign import CampaignSpec, RunStore, run_campaign
from repro.utils.serialization import format_table

SPEC = CampaignSpec(
    scenarios=(
        "wifi-3mbps/jetson-tx2-gpu",
        "lte-3mbps/jetson-tx2-gpu",
        "3g-3mbps/jetson-tx2-cpu",
    ),
    strategies=("lens", "random"),
    seeds=(2021,),
    num_initial=4 if FAST_MODE else 10,
    num_iterations=8 if FAST_MODE else 40,
    candidate_pool_size=16 if FAST_MODE else 64,
    predictor_samples_per_type=40 if FAST_MODE else 200,
)

WORKER_COUNTS = (1, 2, 4)


def _winners(store: RunStore):
    summary = summarize_campaign(store.outcomes())
    return sorted((w.scenario, w.winner) for w in summary.winners)


def test_parallel_campaign_matches_serial(tmp_path):
    """Every worker count produces identical stores; timings are reported."""
    rows = []
    timings = {}
    reference_fingerprints = None
    reference_winners = None
    for workers in WORKER_COUNTS:
        store = RunStore(tmp_path / f"workers-{workers}")
        result = run_campaign(SPEC, store, workers=workers)
        assert len(result.executed) == SPEC.num_cells
        fingerprints = sorted(store.fingerprints())
        winners = _winners(store)
        if reference_fingerprints is None:
            reference_fingerprints, reference_winners = fingerprints, winners
        else:
            assert fingerprints == reference_fingerprints
            assert winners == reference_winners
        timings[workers] = result.wall_time_s
        rows.append([
            workers,
            round(result.wall_time_s, 3),
            round(timings[1] / result.wall_time_s, 2),
        ])

    text = (
        f"Campaign fan-out — {SPEC.num_cells} cells "
        f"({len(SPEC.scenarios)} scenarios x {len(SPEC.strategies)} strategies, "
        f"{SPEC.num_initial}+{SPEC.num_iterations} evaluations per cell)\n"
        + format_table(rows, ["workers", "wall s", "speedup vs serial"])
        + "\nwinners: " + ", ".join(f"{s} -> {w}" for s, w in reference_winners)
    )
    print("\n" + text)
    save_table(
        "campaign_parallel",
        text,
        {
            "spec": SPEC.to_dict(),
            "worker_counts": list(WORKER_COUNTS),
            "wall_time_s": {str(w): t for w, t in timings.items()},
            "winners": [list(pair) for pair in reference_winners],
        },
    )


def test_index_persistence_scales_past_5k_records(tmp_path):
    """Deferred index flushing: 5k appends write the index O(log n) times.

    Before the fix every append rewrote the full ``index.json`` — O(n^2)
    index bytes over a campaign.  Appends past :data:`INDEX_FLUSH_SMALL`
    now flush only at geometrically spaced store sizes (plus on
    ``flush()``/``close()``), so the total index cost is O(n).
    """
    import time as _time

    from repro.api.envelopes import SearchRequest
    from repro.api.session import run_search

    records = 5_000
    outcome = run_search(
        SearchRequest(
            scenario="wifi-3mbps/jetson-tx2-gpu",
            strategy="random",
            num_initial=4,
            num_iterations=2,
            candidate_pool_size=16,
            predictor_samples_per_type=40,
        )
    )
    store = RunStore(tmp_path / "big")
    start = _time.perf_counter()
    for i in range(records):
        store.append(outcome, fingerprint=f"{i:016x}")
    store.flush()
    elapsed = _time.perf_counter() - start

    assert len(store) == records
    # the O(n^2) behaviour wrote the index `records` times; geometric
    # flushing stays within the small-store threshold plus ~log2(n) flushes
    assert store.index_writes < records / 4, (
        f"{store.index_writes} index writes for {records} appends"
    )
    writes_per_append = store.index_writes / records
    text = (
        f"Index persistence at {records} records\n"
        f"appends: {records}, index writes: {store.index_writes} "
        f"({writes_per_append:.4f}/append), elapsed: {elapsed:.2f}s "
        f"({records / elapsed:,.0f} appends/s)"
    )
    print("\n" + text)
    save_table(
        "campaign_store_index",
        text,
        {
            "records": records,
            "index_writes": store.index_writes,
            "index_writes_per_append": writes_per_append,
            "elapsed_s": elapsed,
            "appends_per_s": records / elapsed,
        },
    )


def test_supervisor_overhead_on_healthy_claims(tmp_path):
    """Supervision must be (near) free on the healthy path.

    Every pull-worker claim consults the shared circuit breaker
    (``circuit_allows`` — a lock-free state read when closed) and reports
    its result (``record_result`` — one flock'd read-modify-write).  This
    benchmark measures that per-claim cost directly against the wall time
    of one real (fast-budget) cell and asserts the healthy-path throughput
    delta stays under 2% in full mode; FAST mode reports without
    asserting (cells are artificially cheap there, inflating the ratio).
    """
    import time as _time

    from repro.api.envelopes import SearchRequest
    from repro.api.session import run_search
    from repro.campaign import CampaignPolicy, CampaignSupervisor

    claims = 200 if FAST_MODE else 1000
    supervised = CampaignSupervisor(
        tmp_path / "supervised",
        CampaignPolicy(circuit_window=8, circuit_threshold=0.5),
    )
    disabled = CampaignSupervisor(tmp_path / "disabled", CampaignPolicy())
    timings = {}
    for label, supervisor in (("supervised", supervised), ("disabled", disabled)):
        supervisor.circuit_allows()  # prime directory + state file
        start = _time.perf_counter()
        for _ in range(claims):
            assert supervisor.circuit_allows()
            supervisor.record_result(True)
        timings[label] = _time.perf_counter() - start
    per_claim_extra_s = max(
        0.0, (timings["supervised"] - timings["disabled"]) / claims
    )

    cell_start = _time.perf_counter()
    run_search(SearchRequest(
        scenario="wifi-3mbps/jetson-tx2-gpu",
        strategy="random",
        num_initial=4,
        num_iterations=2,
        candidate_pool_size=16,
        predictor_samples_per_type=40,
    ))
    cell_wall_s = _time.perf_counter() - cell_start
    overhead_fraction = per_claim_extra_s / cell_wall_s

    text = (
        f"Campaign supervision overhead — {claims} healthy claim cycles\n"
        f"supervised: {claims / timings['supervised']:,.0f} claims/s, "
        f"disabled: {claims / timings['disabled']:,.0f} claims/s, "
        f"extra per claim: {per_claim_extra_s * 1e6:.0f}us\n"
        f"one fast-budget cell: {cell_wall_s:.3f}s -> healthy-path overhead "
        f"{overhead_fraction:.4%} per cell"
    )
    print("\n" + text)
    save_table(
        "campaign_supervisor",
        text,
        {
            "claims": claims,
            "supervised_claims_per_s": claims / timings["supervised"],
            "disabled_claims_per_s": claims / timings["disabled"],
            "extra_per_claim_s": per_claim_extra_s,
            "cell_wall_s": cell_wall_s,
            "supervisor_overhead_fraction": overhead_fraction,
        },
    )
    if not FAST_MODE:
        assert overhead_fraction < 0.02, (
            f"supervision costs {overhead_fraction:.2%} of a cell "
            "(budget: 2%)"
        )


def test_pull_worker_sharded_matches_serial(tmp_path):
    """Distributed variant: pull workers + sharded store vs the serial path.

    The acceptance bar of the distributed campaign service: the same grid
    through 2 pull workers against one shared sharded store yields exactly
    the serial fingerprint set.  Wall clocks are reported, not asserted
    (worker startup dominates at benchmark-smoke budgets).
    """
    from repro.campaign import ShardedRunStore

    spec = SPEC if not FAST_MODE else CampaignSpec(
        scenarios=("wifi-3mbps/jetson-tx2-gpu", "lte-3mbps/jetson-tx2-gpu"),
        strategies=("random",),
        seeds=(2021,),
        num_initial=4,
        num_iterations=2,
        candidate_pool_size=16,
        predictor_samples_per_type=40,
    )
    serial = RunStore(tmp_path / "serial")
    serial_result = run_campaign(spec, serial, workers=1)

    sharded = ShardedRunStore(tmp_path / "sharded")
    pull_result = run_campaign(
        spec,
        sharded,
        executor="pull-worker",
        workers=2,
        executor_options={"ttl_s": 30.0, "poll_s": 0.2},
    )
    assert sorted(sharded.fingerprints()) == sorted(serial.fingerprints())
    assert len(pull_result.executed) == spec.num_cells

    text = (
        f"Distributed campaign — {spec.num_cells} cells\n"
        f"serial: {serial_result.wall_time_s:.2f}s, "
        f"pull-worker x2 (sharded store): {pull_result.wall_time_s:.2f}s, "
        f"shards: {len(sharded.shard_keys())}, fingerprints match: yes"
    )
    print("\n" + text)
    save_table(
        "campaign_distributed",
        text,
        {
            "cells": spec.num_cells,
            "serial_wall_s": serial_result.wall_time_s,
            "pull_worker_wall_s": pull_result.wall_time_s,
            "workers": 2,
            "shards": len(sharded.shard_keys()),
            "fingerprints_match": True,
        },
    )
