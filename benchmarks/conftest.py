"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  The
expensive artefacts (performance predictors, full LENS / Traditional search
runs) are computed once per session here and shared; the ``benchmark``
fixture of pytest-benchmark then times a representative unit of work from the
experiment so `pytest benchmarks/ --benchmark-only` produces meaningful
timing rows as well as the reproduced tables.

Environment knobs
-----------------
``REPRO_BENCH_FAST=1``
    Shrink the search budgets (used by CI-style smoke runs).  The default
    budget matches the paper: 300 Bayesian-search evaluations per method.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.lens import LensConfig, LensSearch
from repro.core.traditional import TraditionalSearch
from repro.hardware.device import jetson_tx2_cpu, jetson_tx2_gpu
from repro.hardware.predictors import LayerPerformancePredictor, OracleLayerPredictor
from repro.nn.alexnet import build_alexnet
from repro.nn.search_space import LensSearchSpace
from repro.utils.serialization import dump_json

#: Directory where benchmark tables are written (text + JSON).
RESULTS_DIR = Path(__file__).resolve().parent / "results"

FAST_MODE = os.environ.get("REPRO_BENCH_FAST", "0") == "1"

#: Search budget: the paper runs each Bayesian search for 300 iterations.
NUM_INITIAL = 10 if FAST_MODE else 30
NUM_ITERATIONS = 20 if FAST_MODE else 270
POOL_SIZE = 48 if FAST_MODE else 128
PREDICTOR_SAMPLES = 80 if FAST_MODE else 300
SEED = 2021


def save_table(name: str, text: str, payload) -> None:
    """Persist one benchmark table as .txt (human) and .json (machine)."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    dump_json(payload, RESULTS_DIR / f"{name}.json")


@pytest.fixture(scope="session")
def alexnet():
    """AlexNet reference model used by the motivational-example benchmarks."""
    return build_alexnet()


@pytest.fixture(scope="session")
def gpu_oracle():
    """Noise-free TX2-GPU per-layer predictor."""
    return OracleLayerPredictor(jetson_tx2_gpu())


@pytest.fixture(scope="session")
def cpu_oracle():
    """Noise-free TX2-CPU per-layer predictor."""
    return OracleLayerPredictor(jetson_tx2_cpu())


@pytest.fixture(scope="session")
def trained_gpu_predictor():
    """Regression predictor trained from simulated profiling data (paper IV-C)."""
    return LayerPerformancePredictor.train_for_device(
        jetson_tx2_gpu(), noise_std=0.03, samples_per_type=PREDICTOR_SAMPLES, seed=SEED
    )


@pytest.fixture(scope="session")
def search_space():
    """The paper's VGG-derived search space (Fig. 4)."""
    return LensSearchSpace()


@pytest.fixture(scope="session")
def lens_config():
    """The paper's main experimental configuration: GPU/WiFi, tu = 3 Mbps."""
    return LensConfig(
        wireless_technology="wifi",
        expected_uplink_mbps=3.0,
        round_trip_s=0.01,
        device="jetson-tx2-gpu",
        num_initial=NUM_INITIAL,
        num_iterations=NUM_ITERATIONS,
        candidate_pool_size=POOL_SIZE,
        predictor_samples_per_type=PREDICTOR_SAMPLES,
        seed=SEED,
    )


@pytest.fixture(scope="session")
def lens_run(search_space, lens_config, trained_gpu_predictor):
    """One full LENS search run (search object + result)."""
    search = LensSearch(
        search_space=search_space, config=lens_config, predictor=trained_gpu_predictor
    )
    result = search.run()
    return {"search": search, "result": result}


@pytest.fixture(scope="session")
def traditional_run(search_space, lens_config, trained_gpu_predictor):
    """One full Traditional (edge-only NAS) run plus its post-hoc partitioning."""
    search = TraditionalSearch(
        search_space=search_space, config=lens_config, predictor=trained_gpu_predictor
    )
    result = search.run()
    partitioned_front = search.partition_result(result, pareto_only=True)
    partitioned_all = search.partition_result(result, pareto_only=False)
    return {
        "search": search,
        "result": result,
        "partitioned_front": partitioned_front,
        "partitioned_all": partitioned_all,
    }
