"""Figure 6 — LENS vs Traditional Pareto frontiers.

The paper's main experiment: run LENS's partition-aware MOBO and the
Traditional platform-aware MOBO with the same budget (300 evaluations, WiFi at
3 Mbps, TX2-GPU), then compare the explored architectures and their Pareto
frontiers on the (error, energy) and (error, latency) planes.  The published
summary statistics are:

* the Traditional frontier is dominated completely before partitioning (no
  architecture below 207 mJ is identified);
* after post-hoc partitioning of the Traditional frontier, LENS still
  dominates 60 % of it, only 15.38 % of LENS's frontier is dominated, and a
  combined frontier is 76.47 % LENS (energy); 66.67 % / 14.28 % / 75 % for
  latency.

This benchmark regenerates those statistics on the simulated substrate.  The
absolute percentages depend on the surrogate landscapes; what must hold is
the direction — LENS dominates more of the Traditional frontier than vice
versa and contributes the majority of the combined frontier.
"""

from __future__ import annotations

from conftest import save_table

from repro.analysis.pareto_metrics import compare_fronts, frontier_extremes
from repro.utils.serialization import format_table

#: The paper's reported statistics, echoed in the output for comparison.
PAPER_STATS = {
    ("error_percent", "energy_j"): {"lens_dominates": 60.0, "lens_dominated": 15.38, "combined_lens": 76.47},
    ("error_percent", "latency_s"): {"lens_dominates": 66.67, "lens_dominated": 14.28, "combined_lens": 75.0},
}


def compare_all(lens_result, partitioned, unpartitioned):
    comparisons = {}
    for metrics in (("error_percent", "energy_j"), ("error_percent", "latency_s")):
        comparisons[metrics] = {
            "vs_partitioned": compare_fronts(lens_result, partitioned, metrics),
            "vs_unpartitioned": compare_fronts(lens_result, unpartitioned, metrics),
        }
    return comparisons


def test_fig6_lens_vs_traditional_fronts(benchmark, lens_run, traditional_run):
    """Regenerate the Fig. 6 frontier statistics (energy/error and latency/error)."""
    lens_result = lens_run["result"]
    traditional_result = traditional_run["result"]
    partitioned = traditional_run["partitioned_front"]

    comparisons = benchmark.pedantic(
        compare_all,
        args=(lens_result, partitioned, traditional_result),
        rounds=1,
        iterations=1,
    )

    rows = []
    payload = {}
    for metrics, comparison_pair in comparisons.items():
        versus_partitioned = comparison_pair["vs_partitioned"]
        versus_unpartitioned = comparison_pair["vs_unpartitioned"]
        paper = PAPER_STATS[metrics]
        label = "energy" if "energy_j" in metrics else "latency"
        rows.append(
            [
                label,
                round(100 * versus_unpartitioned.a_dominates_b_fraction, 1),
                round(100 * versus_partitioned.a_dominates_b_fraction, 1),
                paper["lens_dominates"],
                round(100 * versus_partitioned.b_dominates_a_fraction, 1),
                paper["lens_dominated"],
                round(100 * versus_partitioned.combined_fraction_a, 1),
                paper["combined_lens"],
                versus_partitioned.a_front_size,
                versus_partitioned.b_front_size,
            ]
        )
        payload[label] = {
            "vs_partitioned": versus_partitioned.to_dict(),
            "vs_unpartitioned": versus_unpartitioned.to_dict(),
            "paper": paper,
        }
    headers = [
        "metric pair",
        "LENS dom. raw-Trad %",
        "LENS dom. part-Trad %",
        "paper",
        "LENS dominated %",
        "paper",
        "combined = LENS %",
        "paper",
        "|LENS front|",
        "|Trad front|",
    ]

    lens_floor = frontier_extremes(lens_result, ("error_percent", "energy_j"))
    trad_floor = frontier_extremes(traditional_result, ("error_percent", "energy_j"))
    text = (
        "Figure 6 — LENS vs Traditional Pareto-frontier comparison "
        f"({len(lens_result)} evaluations per method, WiFi @ 3 Mbps, TX2-GPU)\n"
        + format_table(rows, headers)
        + "\n\nEnergy floor reached (mJ): "
        + f"LENS={lens_floor['energy_j'] * 1e3:.1f}, Traditional (unpartitioned)={trad_floor['energy_j'] * 1e3:.1f}"
    )
    print("\n" + text)
    payload["explored_per_method"] = len(lens_result)
    payload["lens_energy_floor_mj"] = lens_floor["energy_j"] * 1e3
    payload["traditional_energy_floor_mj"] = trad_floor["energy_j"] * 1e3
    save_table("fig6_pareto_comparison", text, payload)

    # Shape assertions (direction of the paper's claims).
    energy_cmp = comparisons[("error_percent", "energy_j")]["vs_partitioned"]
    assert energy_cmp.a_dominates_b_fraction >= energy_cmp.b_dominates_a_fraction
    assert energy_cmp.combined_fraction_a >= 0.5
    # LENS reaches an energy floor at or below the Traditional search's floor.
    assert lens_floor["energy_j"] <= trad_floor["energy_j"] + 1e-9
