"""Ablation — acquisition strategy of the MOBO search.

The paper builds its NAS on Dragonfly's multi-objective Bayesian optimization
but does not ablate the acquisition strategy.  This benchmark compares
Thompson sampling (the default), lower-confidence-bound and pure random
selection under a reduced budget, reporting the hypervolume of the resulting
(error, energy) Pareto fronts.  It quantifies how much of LENS's advantage
comes from model-based search versus from the partition-aware objectives
(which all three variants share).
"""

from __future__ import annotations

import os

from conftest import save_table

from repro.core.lens import LensConfig, LensSearch
from repro.optim.pareto import hypervolume_2d
from repro.utils.serialization import format_table

FAST_MODE = os.environ.get("REPRO_BENCH_FAST", "0") == "1"
NUM_INITIAL = 8 if FAST_MODE else 15
NUM_ITERATIONS = 12 if FAST_MODE else 60

ACQUISITIONS = ("ts", "ucb", "random")


def run_ablation(search_space, predictor):
    runs = {}
    for acquisition in ACQUISITIONS:
        config = LensConfig(
            wireless_technology="wifi",
            expected_uplink_mbps=3.0,
            num_initial=NUM_INITIAL,
            num_iterations=NUM_ITERATIONS,
            candidate_pool_size=64,
            acquisition=acquisition,
            seed=13,
        )
        search = LensSearch(
            search_space=search_space, config=config, predictor=predictor
        )
        runs[acquisition] = search.run()
    return runs


def test_ablation_acquisition_strategies(benchmark, search_space, trained_gpu_predictor):
    """Compare Pareto-front quality across acquisition strategies."""
    runs = benchmark.pedantic(
        run_ablation, args=(search_space, trained_gpu_predictor), rounds=1, iterations=1
    )

    # A common reference point covering every run's objective ranges.
    all_points = [
        run.objective_matrix(("error_percent", "energy_j")) for run in runs.values()
    ]
    reference = [
        max(float(m[:, 0].max()) for m in all_points) * 1.05,
        max(float(m[:, 1].max()) for m in all_points) * 1.05,
    ]

    rows = []
    payload = {"reference": reference, "budget": NUM_INITIAL + NUM_ITERATIONS}
    for acquisition, run in runs.items():
        front = run.pareto_objectives(("error_percent", "energy_j"))
        hv = hypervolume_2d(front, reference)
        best_error = min(c.error_percent for c in run)
        best_energy_mj = min(c.energy_mj for c in run)
        rows.append(
            [acquisition, len(run), front.shape[0], round(hv, 3), round(best_error, 2), round(best_energy_mj, 1)]
        )
        payload[acquisition] = {
            "hypervolume": hv,
            "front_size": int(front.shape[0]),
            "best_error_percent": best_error,
            "best_energy_mj": best_energy_mj,
        }
    headers = ["acquisition", "evaluations", "front size", "hypervolume", "best error %", "best energy mJ"]
    text = (
        "Ablation — acquisition strategy (error/energy front quality, same budget)\n"
        + format_table(rows, headers)
    )
    print("\n" + text)
    save_table("ablation_acquisition", text, payload)

    hv_by_acq = {row[0]: row[3] for row in rows}
    # The model-based strategies should not be clearly worse than random.
    assert hv_by_acq["ts"] >= 0.8 * hv_by_acq["random"]
