"""Ablation — fidelity of the per-layer regression predictors (paper IV-C).

The NAS never sees the measurement apparatus directly; it relies on the
regression models trained from profiled layer configurations.  This ablation
quantifies how close the regression predictions are to the (noise-free)
measurement oracle across sampled search-space architectures and AlexNet, and
how the fidelity depends on the amount of profiling data — the practical
question a user of the methodology faces when budgeting board time.
"""

from __future__ import annotations

import os

from conftest import save_table

from repro.hardware.device import jetson_tx2_gpu
from repro.hardware.predictors import (
    LayerPerformancePredictor,
    prediction_error_report,
)
from repro.nn.alexnet import build_alexnet
from repro.utils.serialization import format_table

FAST_MODE = os.environ.get("REPRO_BENCH_FAST", "0") == "1"
PROFILE_BUDGETS = (30, 100, 300) if not FAST_MODE else (30, 60)
NUM_ARCHITECTURES = 12 if not FAST_MODE else 6


def run_fidelity_study(search_space):
    device = jetson_tx2_gpu()
    architectures = [
        search_space.decode_for_performance(search_space.sample(seed))
        for seed in range(NUM_ARCHITECTURES)
    ]
    architectures.append(build_alexnet())
    rows = []
    for budget in PROFILE_BUDGETS:
        predictor = LayerPerformancePredictor.train_for_device(
            device, noise_std=0.03, samples_per_type=budget, seed=1
        )
        report = prediction_error_report(predictor, architectures)
        scores = predictor.training_scores
        rows.append(
            {
                "profiles_per_family": budget,
                "latency_mape_percent": report["latency_mape"] * 100,
                "energy_mape_percent": report["energy_mape"] * 100,
                "conv_latency_r2": scores["conv"]["latency_r2"],
                "fc_latency_r2": scores["fc"]["latency_r2"],
            }
        )
    return rows


def test_ablation_predictor_fidelity(benchmark, search_space):
    """Prediction error vs profiling budget for the latency/power models."""
    rows = benchmark.pedantic(run_fidelity_study, args=(search_space,), rounds=1, iterations=1)
    table_rows = [
        [
            row["profiles_per_family"],
            round(row["latency_mape_percent"], 2),
            round(row["energy_mape_percent"], 2),
            round(row["conv_latency_r2"], 4),
            round(row["fc_latency_r2"], 4),
        ]
        for row in rows
    ]
    headers = [
        "profiles / family",
        "whole-model latency MAPE %",
        "whole-model energy MAPE %",
        "conv latency R2",
        "fc latency R2",
    ]
    text = (
        "Ablation — regression-predictor fidelity vs profiling budget (TX2-GPU)\n"
        + format_table(table_rows, headers)
    )
    print("\n" + text)
    save_table("ablation_predictor_fidelity", text, {"rows": rows})

    # With a realistic profiling budget the whole-model error stays small
    # enough for search-time ranking.
    assert rows[-1]["latency_mape_percent"] < 25.0
    assert rows[-1]["energy_mape_percent"] < 30.0
    assert rows[-1]["conv_latency_r2"] > 0.9
