"""Figure 1 — AlexNet per-layer feature-map sizes and latency shares.

The paper's motivational example plots, for every AlexNet layer, the size of
its output feature map and the percentage of the total execution latency it
accounts for, and observes that (a) the three fully-connected layers take
about half of the execution time and (b) only layers from Pool5 onward emit
less data than the raw input.  This benchmark regenerates those rows on the
simulated TX2-GPU predictor.
"""

from __future__ import annotations

from conftest import save_table

from repro.analysis.per_layer import latency_share_by_type, per_layer_report
from repro.utils.serialization import format_table


def build_rows(alexnet, predictor):
    rows = []
    for entry in per_layer_report(alexnet, predictor):
        rows.append(
            [
                entry.name,
                entry.layer_type,
                round(entry.output_kilobytes, 1),
                round(entry.latency_s * 1e3, 3),
                round(entry.latency_share_percent, 1),
                "yes" if entry.smaller_than_input else "no",
            ]
        )
    return rows


def test_fig1_per_layer_breakdown(benchmark, alexnet, gpu_oracle):
    """Regenerate the Fig. 1 rows and time the per-layer analysis."""
    rows = benchmark(build_rows, alexnet, gpu_oracle)
    headers = ["layer", "type", "out_kB", "latency_ms", "latency_%", "viable split"]
    shares = latency_share_by_type(alexnet, gpu_oracle)
    text = (
        "Figure 1 — AlexNet per-layer output sizes and latency shares (TX2-GPU)\n"
        + format_table(rows, headers)
        + "\n\nLatency share by layer family: "
        + ", ".join(f"{family}={share:.1f}%" for family, share in sorted(shares.items()))
        + f"\nInput size: {alexnet.input_bytes / 1024:.1f} kB"
    )
    print("\n" + text)
    save_table(
        "fig1_alexnet_layers",
        text,
        {"rows": rows, "headers": headers, "latency_share_by_type": shares},
    )

    # Paper shape checks: FC layers ~half of the latency, splits viable from pool5 on.
    assert 35.0 < shares["fc"] < 75.0
    viable = [row[0] for row in rows if row[5] == "yes"]
    assert viable[0] == "pool5"
    assert "conv3" not in viable
