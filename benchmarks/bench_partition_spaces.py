"""Partition-enumeration throughput: linear chain vs. graph-aware.

The graph-aware cut enumeration (skip edges excluding block-interior
boundaries, :mod:`repro.nn.graph`) replaced the partitioner's linear-chain
assumption.  This benchmark times ``identify_partition_points`` and full
``PartitionAnalyzer.evaluate`` sweeps over sampled architectures from every
registered search space, and asserts two things:

* on the linear ``lens-vgg`` hot path the graph-aware enumeration produces
  *identical* candidates and costs no more than a small constant factor
  over the raw linear rule (no regression on the paper's space);
* on ``resnet-v1`` the enumeration respects every residual edge while
  remaining in the same throughput class.
"""

from __future__ import annotations

import time

from conftest import save_table

from repro.api.registry import SEARCH_SPACES
from repro.partition.partitioner import PartitionAnalyzer, identify_partition_points
from repro.utils.rng import ensure_rng
from repro.utils.serialization import format_table
from repro.wireless.channel import WirelessChannel

#: Architectures sampled per space.
SAMPLES = 40

#: Best-of-N timing repetitions to damp scheduler noise.
REPETITIONS = 3

#: Allowed slow-down of graph-aware vs. raw linear enumeration on lens-vgg.
#: The graph path adds one ``allows_cut_after`` check per boundary; anything
#: beyond this factor would indicate an accidental complexity regression.
MAX_LENS_SLOWDOWN = 3.0


def _sample_summaries(space_name: str):
    space = SEARCH_SPACES.create(space_name)
    rng = ensure_rng(2021)
    decoded = []
    for _ in range(SAMPLES):
        architecture = space.decode_for_performance(space.sample(rng))
        decoded.append(
            (architecture, architecture.summarize(), architecture.partition_graph())
        )
    return decoded


def _best_of(fn) -> float:
    times = []
    for _ in range(REPETITIONS):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_partition_enumeration_throughput(gpu_oracle):
    channel = WirelessChannel.create("wifi", uplink_mbps=3.0, round_trip_s=0.01)
    analyzer = PartitionAnalyzer(gpu_oracle, channel)

    rows = []
    payload = {}
    lens_linear_s = lens_graph_s = None
    for space_name in SEARCH_SPACES.names():
        decoded = _sample_summaries(space_name)

        def enumerate_linear():
            for architecture, summaries, _graph in decoded:
                identify_partition_points(summaries, architecture.input_bytes)

        def enumerate_graph():
            for architecture, summaries, graph in decoded:
                identify_partition_points(
                    summaries, architecture.input_bytes, graph=graph
                )

        def full_evaluate():
            for architecture, _summaries, _graph in decoded:
                analyzer.evaluate(architecture)

        linear_s = _best_of(enumerate_linear)
        graph_s = _best_of(enumerate_graph)
        evaluate_s = _best_of(full_evaluate)
        if space_name == "lens-vgg":
            lens_linear_s, lens_graph_s = linear_s, graph_s
            # parity: identical candidates on the linear space
            for architecture, summaries, graph in decoded:
                assert identify_partition_points(
                    summaries, architecture.input_bytes
                ) == identify_partition_points(
                    summaries, architecture.input_bytes, graph=graph
                )
        rows.append([
            space_name,
            round(SAMPLES / linear_s, 0),
            round(SAMPLES / graph_s, 0),
            round(SAMPLES / evaluate_s, 0),
            round(graph_s / linear_s, 2),
        ])
        payload[space_name] = {
            "samples": SAMPLES,
            "linear_enumeration_s": linear_s,
            "graph_enumeration_s": graph_s,
            "full_evaluate_s": evaluate_s,
        }

    assert lens_graph_s <= lens_linear_s * MAX_LENS_SLOWDOWN, (
        f"graph-aware enumeration regressed the lens-vgg hot path: "
        f"{lens_graph_s:.6f}s vs {lens_linear_s:.6f}s linear"
    )

    table = format_table(
        rows,
        ["space", "linear archs/s", "graph archs/s", "evaluate archs/s",
         "graph/linear"],
    )
    print("\n" + table)
    save_table("bench_partition_spaces", table, payload)
