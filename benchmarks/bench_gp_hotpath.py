"""GP surrogate hot path: cold per-model refits vs the incremental bank.

The MOBO loop (paper Algorithm 2) conditions one GP per objective on all
evaluations after *every* evaluation.  Before the incremental engine this
meant k fresh O(n^3) Cholesky factorisations per iteration — O(k N^4) over an
N-evaluation search.  The :class:`~repro.optim.gp_bank.GPBank` replaces that
with one shared rank-1 Cholesky append plus batched O(n^2) retargets.

This benchmark replays the surrogate phase of a search (the per-iteration
``normalize -> condition`` loop, exactly what
``MultiObjectiveBayesianOptimizer._fit_models`` does) three ways:

* ``legacy-cold`` — the pre-bank behaviour: k separate ``GaussianProcess.fit``
  calls per iteration;
* ``bank-cold`` — the bank in ``"exact-refit"`` mode (shared factorisation,
  still cold every iteration);
* ``incremental`` — the bank's rank-1 fast path (the default).

It asserts posterior-parity between the incremental and cold paths (<= 1e-6,
the correctness gate — this is what the CI smoke job enforces) and records
timings/speedups as JSON.  Timing floors are only asserted on full-size runs
(``REPRO_BENCH_FAST=0``): the paper-scale 300-evaluation search must show a
>= 5x surrogate-phase speedup over the legacy cold path.

A second test smokes the vectorised ``pareto_front_mask`` on a 50k-point
cloud and cross-checks it against the O(n^2) reference implementation.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import FAST_MODE, save_table

from repro.optim.gp import GaussianProcess
from repro.optim.gp_bank import GPBank
from repro.optim.kernels import Matern52Kernel
from repro.optim.pareto import _pareto_front_mask_reference, pareto_front_mask
from repro.optim.scalarization import normalize_objectives

#: Final evaluation counts replayed by the surrogate-phase benchmark.
SIZES = (30, 60) if FAST_MODE else (50, 200, 500)

#: The paper-scale search whose surrogate phase must speed up >= 5x.
SEARCH_EVALUATIONS = 300

#: Feature dimensionality (the lens-vgg genotype projects to 24 features).
FEATURE_DIM = 24

#: Objectives per evaluation (error, latency, energy).
NUM_OBJECTIVES = 3

#: Random-initialisation prefix before the per-iteration conditioning starts.
NUM_INITIAL = 10

#: Maximum allowed posterior mean/std divergence between the paths.
PARITY_TOLERANCE = 1e-6

#: Pareto smoke-cloud size (and the cross-check subsample size).
PARETO_POINTS = 5_000 if FAST_MODE else 50_000
PARETO_CHECK_POINTS = 2_000

_LENGTHSCALE = 0.5 * float(np.sqrt(FEATURE_DIM))


def _kernel() -> Matern52Kernel:
    return Matern52Kernel(lengthscale=_LENGTHSCALE)


def _surrogate_stream(total: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(total, FEATURE_DIM))
    Y = rng.uniform(size=(total, NUM_OBJECTIVES))
    probe = rng.uniform(size=(64, FEATURE_DIM))
    return X, Y, probe


def _replay_bank(X: np.ndarray, Y: np.ndarray, mode: str, health=None) -> tuple:
    """Replay the per-iteration conditioning with a GPBank; returns (seconds, bank)."""
    bank = GPBank(NUM_OBJECTIVES, kernel=_kernel(), update_mode=mode, health=health)
    elapsed = 0.0
    for n in range(NUM_INITIAL, X.shape[0] + 1):
        Y_norm, _, _ = normalize_objectives(Y[:n])
        start = time.perf_counter()
        bank.update(X[:n], Y_norm)
        elapsed += time.perf_counter() - start
    return elapsed, bank


def _replay_legacy(X: np.ndarray, Y: np.ndarray) -> tuple:
    """The seed behaviour: k fresh per-model fits every iteration."""
    models = []
    elapsed = 0.0
    for n in range(NUM_INITIAL, X.shape[0] + 1):
        Y_norm, _, _ = normalize_objectives(Y[:n])
        start = time.perf_counter()
        models = [
            GaussianProcess(kernel=_kernel()).fit(X[:n], Y_norm[:, k])
            for k in range(NUM_OBJECTIVES)
        ]
        elapsed += time.perf_counter() - start
    return elapsed, models


def _max_posterior_divergence(bank: GPBank, models, probe: np.ndarray) -> float:
    mean_inc, std_inc = bank.predict(probe)
    mean_ref = np.column_stack([m.predict(probe)[0] for m in models])
    std_ref = np.column_stack([m.predict(probe)[1] for m in models])
    return float(
        max(np.max(np.abs(mean_inc - mean_ref)), np.max(np.abs(std_inc - std_ref)))
    )


def test_incremental_surrogate_phase_speedup_and_parity():
    """Incremental conditioning must match cold refits and (full runs) beat them 5x."""
    rows = []
    payload_sizes = []
    sizes = SIZES if FAST_MODE else tuple(SIZES) + (NUM_INITIAL + SEARCH_EVALUATIONS,)
    search_speedup = None
    for total in sizes:
        X, Y, probe = _surrogate_stream(total)
        t_inc, bank = _replay_bank(X, Y, "incremental")
        t_cold, _ = _replay_bank(X, Y, "exact-refit")
        t_legacy, models = _replay_legacy(X, Y)
        divergence = _max_posterior_divergence(bank, models, probe)
        speedup_legacy = t_legacy / t_inc if t_inc > 0 else float("inf")
        speedup_cold = t_cold / t_inc if t_inc > 0 else float("inf")
        if total == NUM_INITIAL + SEARCH_EVALUATIONS:
            search_speedup = speedup_legacy
        rows.append(
            [
                total,
                round(t_inc * 1e3, 1),
                round(t_cold * 1e3, 1),
                round(t_legacy * 1e3, 1),
                round(speedup_cold, 1),
                round(speedup_legacy, 1),
                f"{divergence:.1e}",
            ]
        )
        payload_sizes.append(
            {
                "evaluations": total,
                "incremental_s": t_inc,
                "bank_cold_s": t_cold,
                "legacy_cold_s": t_legacy,
                "speedup_vs_bank_cold": speedup_cold,
                "speedup_vs_legacy_cold": speedup_legacy,
                "max_posterior_divergence": divergence,
            }
        )

    from repro.utils.serialization import format_table

    text = (
        "GP surrogate hot path — cold refits vs incremental bank "
        f"(d={FEATURE_DIM}, k={NUM_OBJECTIVES} objectives, "
        f"{'fast' if FAST_MODE else 'full'} mode)\n"
        + format_table(
            rows,
            [
                "evals",
                "incremental ms",
                "bank-cold ms",
                "legacy-cold ms",
                "x vs bank-cold",
                "x vs legacy",
                "parity",
            ],
        )
    )
    print("\n" + text)
    save_table(
        "gp_hotpath",
        text,
        {
            "feature_dim": FEATURE_DIM,
            "num_objectives": NUM_OBJECTIVES,
            "num_initial": NUM_INITIAL,
            "fast_mode": FAST_MODE,
            "parity_tolerance": PARITY_TOLERANCE,
            "sizes": payload_sizes,
            "search300_speedup_vs_legacy": search_speedup,
        },
    )
    # Assertions come *after* save_table so a failing run still records its
    # divergences/timings (the CI job uploads them as an artifact).
    for entry in payload_sizes:
        assert entry["max_posterior_divergence"] <= PARITY_TOLERANCE, (
            "incremental posterior diverged from the exact refit at "
            f"n={entry['evaluations']}: {entry['max_posterior_divergence']:.3e} "
            f"> {PARITY_TOLERANCE:.0e}"
        )
    if not FAST_MODE:
        # Timing floor only on full runs; smoke/CI runs gate on parity alone.
        assert search_speedup is not None and search_speedup >= 5.0, (
            "surrogate phase of a 300-evaluation search should be >= 5x faster "
            f"than the legacy cold-refit path, measured {search_speedup:.1f}x"
        )


def test_health_instrumentation_overhead():
    """A healthy search must pay (almost) nothing for the degradation ladder.

    The resilience consult sites (``faults.active()`` checks in the
    Cholesky/objective paths, the ``health is not None`` guards in the
    ladder) live on the surrogate hot path, so this case replays the same
    incremental conditioning stream twice — bare vs with a
    :class:`~repro.resilience.health.HealthLog` attached — and bounds the
    instrumentation overhead.  The < 2% floor is asserted on full-size runs
    only (timings in fast/CI mode gate on the no-events invariant alone).
    """
    from repro.resilience.health import HealthLog

    total = 60 if FAST_MODE else 200
    repeats = 3 if FAST_MODE else 5
    X, Y, _ = _surrogate_stream(total, seed=3)
    log = HealthLog()

    def best_of(health) -> float:
        # min-of-N: instrumentation overhead is a floor effect, so compare
        # best-case timings to keep scheduler noise out of the ratio
        return min(
            _replay_bank(X, Y, "incremental", health=health)[0]
            for _ in range(repeats)
        )

    bare_s = best_of(None)
    instrumented_s = best_of(log)
    overhead = instrumented_s / bare_s - 1.0 if bare_s > 0 else 0.0

    text = (
        f"health instrumentation on the incremental surrogate path "
        f"(n={total}, best of {repeats}): bare {bare_s * 1e3:.1f} ms, "
        f"instrumented {instrumented_s * 1e3:.1f} ms, "
        f"overhead {overhead * 100:+.2f}%"
    )
    print("\n" + text)
    save_table(
        "gp_resilience_overhead",
        text,
        {
            "evaluations": total,
            "repeats": repeats,
            "bare_s": bare_s,
            "instrumented_s": instrumented_s,
            "overhead_fraction": overhead,
            "health_events": len(log),
            "fast_mode": FAST_MODE,
        },
    )
    # A healthy replay must record no events — the ladder only speaks up
    # when a rung actually fires.
    assert len(log) == 0, f"healthy replay recorded {len(log)} health events"
    if not FAST_MODE:
        assert overhead <= 0.02, (
            "health instrumentation should cost < 2% on the surrogate hot "
            f"path, measured {overhead * 100:.2f}%"
        )


def test_pareto_front_mask_vectorized_smoke():
    """50k-point Pareto mask: correct against the reference and fast enough to time."""
    rng = np.random.default_rng(7)
    cloud = rng.uniform(size=(PARETO_POINTS, 3))
    # Sprinkle duplicated rows so the duplicate-retention semantics are hit.
    cloud[-100:] = cloud[:100]

    start = time.perf_counter()
    mask = pareto_front_mask(cloud)
    elapsed = time.perf_counter() - start

    front = cloud[mask]
    text = (
        f"pareto_front_mask on {PARETO_POINTS} random 3-objective points: "
        f"{elapsed * 1e3:.1f} ms, front size {front.shape[0]}"
    )
    print("\n" + text)
    save_table(
        "pareto_mask_smoke",
        text,
        {
            "points": PARETO_POINTS,
            "front_size": int(front.shape[0]),
            "elapsed_s": elapsed,
            "fast_mode": FAST_MODE,
        },
    )

    assert front.shape[0] > 0
    # Every front member must be non-dominated within the front itself.
    assert np.all(_pareto_front_mask_reference(front))
    # Every excluded point must be dominated by some front member.
    excluded = cloud[~mask][:PARETO_CHECK_POINTS]
    dominated = np.array(
        [
            bool(np.any(np.all(front <= p, axis=1) & np.any(front < p, axis=1)))
            for p in excluded
        ]
    )
    assert dominated.all()
    # Exact equivalence with the reference implementation on a subsample.
    sample = cloud[:PARETO_CHECK_POINTS]
    assert np.array_equal(
        pareto_front_mask(sample), _pareto_front_mask_reference(sample)
    )
