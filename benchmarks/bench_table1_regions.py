"""Table I — preferred AlexNet deployment per region.

The paper takes the Opensignal 2020 average experienced upload throughput of
three regions (South Korea 16.1 Mbps, USA 7.5 Mbps, Afghanistan 0.7 Mbps) and
reports which deployment option each device/metric combination prefers in
each region.  The takeaway is variability: the same application favours
different deployments in different regions, which is why the expected
wireless conditions belong in the design-time objectives.
"""

from __future__ import annotations

from conftest import save_table

from repro.analysis.deployment_sweep import (
    DeploymentConfiguration,
    preference_changes,
    regional_preferences,
)
from repro.utils.serialization import format_table
from repro.wireless.regions import paper_regions

#: The cells of Table I as published, for shape comparison in the output.
PAPER_TABLE_1 = {
    ("South Korea", "GPU/WiFi", "latency"): "All-Edge",
    ("South Korea", "GPU/WiFi", "energy"): "Split@pool5",
    ("South Korea", "CPU/LTE", "latency"): "All-Cloud",
    ("South Korea", "CPU/LTE", "energy"): "All-Cloud",
    ("USA", "GPU/WiFi", "latency"): "All-Edge",
    ("USA", "GPU/WiFi", "energy"): "Split@pool5",
    ("USA", "CPU/LTE", "latency"): "Split@pool5",
    ("USA", "CPU/LTE", "energy"): "All-Cloud",
    ("Afghanistan", "GPU/WiFi", "latency"): "All-Edge",
    ("Afghanistan", "GPU/WiFi", "energy"): "All-Edge",
    ("Afghanistan", "CPU/LTE", "latency"): "All-Edge",
    ("Afghanistan", "CPU/LTE", "energy"): "Split@pool5",
}


def run_table(alexnet, gpu_oracle, cpu_oracle):
    configurations = [
        DeploymentConfiguration("GPU/WiFi", gpu_oracle, "wifi"),
        DeploymentConfiguration("CPU/LTE", cpu_oracle, "lte"),
    ]
    return regional_preferences(alexnet, configurations, paper_regions())


def test_table1_regional_deployment_preferences(
    benchmark, alexnet, gpu_oracle, cpu_oracle
):
    """Regenerate Table I and report agreement with the published cells."""
    rows = benchmark(run_table, alexnet, gpu_oracle, cpu_oracle)
    table_rows = []
    matches = 0
    for row in rows:
        published = PAPER_TABLE_1[(row.region, row.configuration, row.metric)]
        agree = row.best_option == published
        matches += agree
        table_rows.append(
            [
                row.region,
                row.uplink_mbps,
                row.configuration,
                row.metric,
                row.best_option,
                published,
                "yes" if agree else "no",
            ]
        )
    headers = ["region", "tu_Mbps", "config", "metric", "measured", "paper", "match"]
    text = (
        "Table I — preferred deployment per region, device and metric\n"
        + format_table(table_rows, headers)
        + f"\n\nAgreement with the paper: {matches}/{len(rows)} cells; "
        + f"{preference_changes(rows)} distinct options appear across regions"
    )
    print("\n" + text)
    save_table(
        "table1_regions",
        text,
        {"rows": [r.to_dict() for r in rows], "matches": matches, "total": len(rows)},
    )

    # Shape checks: clear regional variability and strong agreement with the paper.
    assert preference_changes(rows) >= 2
    assert matches >= 9
