"""Table II — qualitative feature comparison against related work.

The table contrasts LENS with Neurosurgeon (NS), SIEVE and the
input-dependent RNN-mapping work across eight capabilities.  The content is
qualitative; this benchmark renders the matrix from the library's
related-work catalogue and checks the claims that define LENS's position
(the only system with NAS support and design-time wireless expectancy).
"""

from __future__ import annotations

from conftest import save_table

from repro.core.related_work import (
    FEATURES,
    RELATED_WORKS,
    feature_matrix,
    feature_matrix_headers,
)
from repro.utils.serialization import format_table


def test_table2_feature_matrix(benchmark):
    """Render Table II and verify the qualitative claims."""
    rows = benchmark(feature_matrix)
    headers = feature_matrix_headers()
    text = "Table II — supported features per system\n" + format_table(rows, headers)
    print("\n" + text)
    save_table(
        "table2_feature_matrix",
        text,
        {"headers": headers, "rows": rows, "systems": [w.to_dict() for w in RELATED_WORKS]},
    )

    assert len(rows) == len(FEATURES)
    lens_only_features = ("NAS support", "Wireless expectancy at Design Time")
    for feature in lens_only_features:
        row = next(r for r in rows if r[0] == feature)
        assert row[1] == "yes" and row[2:] == ["-", "-", "-"]
    partitioning_row = next(r for r in rows if r[0] == "E-C Layer-Partitioning")
    assert partitioning_row[1] == "yes" and partitioning_row[2] == "yes"
