"""Figure 7 — partition within vs after the optimization.

The paper counts how many of the explored architectures satisfy accuracy /
energy criteria (Err < 25, Err < 20, Ergy < 250 mJ, Ergy < 200 mJ and the
conjunction Err < 25 & Ergy < 250) when partitioning is applied *within* the
optimization objectives (LENS) versus *after* it (Traditional, with every
explored candidate re-costed post hoc).  Partitioning within the optimization
steers the search toward energy-efficient regions, so the energy criteria
counts increase.
"""

from __future__ import annotations

from conftest import save_table

from repro.analysis.criteria import compare_criteria, paper_criteria
from repro.utils.serialization import format_table


def count_criteria(lens_result, partitioned_all):
    return compare_criteria(lens_result, partitioned_all, paper_criteria())


def test_fig7_partition_within_vs_after(benchmark, lens_run, traditional_run):
    """Regenerate the Fig. 7 criterion counts."""
    lens_result = lens_run["result"]
    partitioned_all = traditional_run["partitioned_all"]
    comparisons = benchmark.pedantic(
        count_criteria, args=(lens_result, partitioned_all), rounds=1, iterations=1
    )

    rows = []
    for comparison in comparisons:
        change = comparison.percent_change
        rows.append(
            [
                comparison.criterion.label,
                comparison.count_a,
                comparison.count_b,
                "inf" if change == float("inf") else round(change, 1),
            ]
        )
    headers = [
        "criterion",
        "partition within (LENS)",
        "partition after (Traditional)",
        "change %",
    ]
    text = (
        "Figure 7 — architectures satisfying each criterion "
        f"(out of {len(lens_result)} explored per method)\n"
        + format_table(rows, headers)
    )
    print("\n" + text)
    save_table(
        "fig7_criteria_counts",
        text,
        {"comparisons": [c.to_dict() for c in comparisons], "explored": len(lens_result)},
    )

    by_label = {c.criterion.label: c for c in comparisons}
    # Paper shape: partition-within explores at least as many low-energy
    # architectures as partition-after for the energy criteria.
    assert by_label["Ergy < 250"].count_a >= by_label["Ergy < 250"].count_b
    # Both strategies explore some accurate architectures.
    assert by_label["Err < 25"].count_a > 0
    assert by_label["Err < 25"].count_b > 0
