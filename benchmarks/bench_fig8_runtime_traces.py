"""Figure 8 — runtime adaptation of two Pareto-frontier models.

The paper selects two models (A and B) from LENS's Pareto frontier, computes
the throughput thresholds separating their deployment options (6.77 Mbps for
model A's energy trade-off, 22.77 Mbps for model B's latency trade-off), and
replays collected LTE throughput traces to compare fixed deployments against
the dynamic throughput-tracking switcher.  Dynamic switching is slightly
better than the best fixed option and much better than the worst one, which
supports the claim that most of the efficiency is already captured by
deploying according to the design-time expectation.

Model A is analysed for energy (best split vs All-Edge); model B for latency
(best split vs All-Cloud), as in the paper.
"""

from __future__ import annotations

from conftest import save_table

from repro.analysis.runtime_eval import run_runtime_study
from repro.wireless.traces import generate_lte_trace
from repro.utils.serialization import format_table


def pick_models(lens_run):
    """Model A: an energy-frontier model that genuinely benefits from a split
    (the paper's model A switches between its partitioned option and All-Edge);
    model B: the lowest-latency frontier model (the paper's model B switches
    between its partitioned option and All-Cloud)."""
    result = lens_run["result"]
    front_energy = result.pareto_candidates(("error_percent", "energy_j"))
    front_latency = result.pareto_candidates(("error_percent", "latency_s"))
    split_preferring = [c for c in front_energy if c.best_energy_option.is_split]
    model_a = min(split_preferring or front_energy, key=lambda c: c.energy_j)
    offload_preferring = [c for c in front_latency if c.best_latency_option.kind != "all_edge"]
    model_b = min(offload_preferring or front_latency, key=lambda c: c.latency_s)
    return model_a, model_b


def _trace_mean(study_threshold, fallback_mbps):
    """Centre the replay trace on the model's switching threshold when one
    exists, as the paper's collected traces happen to straddle the published
    thresholds (6.77 and 22.77 Mbps)."""
    if study_threshold is None or not (0.2 <= study_threshold <= 80.0):
        return fallback_mbps
    return study_threshold


def run_studies(lens_run, search_space):
    search = lens_run["search"]
    model_a, model_b = pick_models(lens_run)
    arch_a = search_space.decode_for_performance(model_a.genotype)
    arch_b = search_space.decode_for_performance(model_b.genotype)

    def study_for(label, architecture, metric, include_all_edge, include_all_cloud, seed, fallback):
        probe = run_runtime_study(
            label,
            architecture,
            search.predictor,
            search.channel,
            generate_lte_trace(num_samples=4, mean_mbps=fallback, seed=seed),
            metric=metric,
            include_all_edge=include_all_edge,
            include_all_cloud=include_all_cloud,
        )
        mean = _trace_mean(probe.switching_threshold_mbps, fallback)
        trace = generate_lte_trace(
            num_samples=40, mean_mbps=mean, seed=seed, name=f"lte-{label}"
        )
        return run_runtime_study(
            label,
            architecture,
            search.predictor,
            search.channel,
            trace,
            metric=metric,
            include_all_edge=include_all_edge,
            include_all_cloud=include_all_cloud,
        )

    study_a = study_for(
        "model A", arch_a, "energy", include_all_edge=True, include_all_cloud=False,
        seed=11, fallback=7.0,
    )
    study_b = study_for(
        "model B", arch_b, "latency", include_all_edge=False, include_all_cloud=True,
        seed=12, fallback=21.0,
    )
    return study_a, study_b


def test_fig8_runtime_adaptation(benchmark, lens_run, search_space):
    """Regenerate the Fig. 8 cumulative-cost comparison for models A and B."""
    study_a, study_b = benchmark.pedantic(
        run_studies, args=(lens_run, search_space), rounds=1, iterations=1
    )

    rows = []
    payload = {}
    for study in (study_a, study_b):
        unit = "J" if study.metric == "energy" else "s"
        dynamic = study.comparison.cumulative["dynamic"]
        for label, value in sorted(study.comparison.cumulative.items()):
            improvement = (
                0.0 if label == "dynamic" else study.comparison.improvement_percent(label)
            )
            rows.append(
                [
                    study.model_label,
                    study.metric,
                    label,
                    round(value, 4),
                    unit,
                    round(improvement, 2),
                ]
            )
        threshold = study.switching_threshold_mbps
        payload[study.model_label] = {
            "study": study.to_dict(),
            "switching_threshold_mbps": threshold,
        }
        rows.append(
            [
                study.model_label,
                study.metric,
                "switching threshold",
                round(threshold, 2) if threshold else "n/a",
                "Mbps",
                "",
            ]
        )
        assert dynamic <= min(
            v for k, v in study.comparison.cumulative.items() if k != "dynamic"
        ) + 1e-12

    headers = ["model", "metric", "strategy", "cumulative", "unit", "dynamic gain %"]
    text = (
        "Figure 8 — cumulative cost over a 40-sample LTE throughput trace\n"
        + format_table(rows, headers)
    )
    print("\n" + text)
    save_table("fig8_runtime_traces", text, payload)
