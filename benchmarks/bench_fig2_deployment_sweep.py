"""Figure 2 — best AlexNet deployment vs upload throughput.

The paper sweeps the upload throughput for two device/radio configurations
(GPU with WiFi, CPU with LTE) and shows that the deployment option minimising
latency or energy changes with the throughput — e.g. for GPU/WiFi latency the
30 Mbps case prefers splitting after Pool5 while lower throughputs prefer
All-Edge.  This benchmark regenerates the winning option for every
(configuration, throughput, metric) cell.
"""

from __future__ import annotations

from conftest import save_table

from repro.analysis.deployment_sweep import DeploymentConfiguration, sweep_deployments
from repro.utils.serialization import format_table

#: Throughputs swept by the figure (Mbps).
UPLINKS_MBPS = (0.5, 1.0, 3.0, 7.5, 16.1, 30.0)


def run_sweep(alexnet, gpu_oracle, cpu_oracle):
    configurations = [
        DeploymentConfiguration("GPU/WiFi", gpu_oracle, "wifi"),
        DeploymentConfiguration("CPU/LTE", cpu_oracle, "lte"),
    ]
    return sweep_deployments(alexnet, configurations, UPLINKS_MBPS, ("latency", "energy"))


def test_fig2_deployment_preferences_vs_throughput(
    benchmark, alexnet, gpu_oracle, cpu_oracle
):
    """Regenerate the Fig. 2 preference map and time the sweep."""
    rows = benchmark(run_sweep, alexnet, gpu_oracle, cpu_oracle)
    table_rows = [
        [
            row.configuration,
            row.uplink_mbps,
            row.metric,
            row.best_option,
            round(row.best_value * (1e3 if row.metric == "latency" else 1e3), 2),
            round(row.all_edge_value * 1e3, 2),
            round(row.all_cloud_value * 1e3, 2),
        ]
        for row in rows
    ]
    headers = [
        "config", "tu_Mbps", "metric", "best option",
        "best (ms|mJ)", "All-Edge (ms|mJ)", "All-Cloud (ms|mJ)",
    ]
    text = (
        "Figure 2 — best AlexNet deployment option vs upload throughput\n"
        + format_table(table_rows, headers)
    )
    print("\n" + text)
    save_table("fig2_deployment_sweep", text, {"rows": [r.to_dict() for r in rows]})

    # Paper shape: GPU/WiFi latency prefers All-Edge at low tu and a split at 30 Mbps;
    # CPU/LTE prefers offloading (split or cloud) once the uplink is fast.
    by_cell = {(r.configuration, r.uplink_mbps, r.metric): r.best_option for r in rows}
    assert by_cell[("GPU/WiFi", 1.0, "latency")] == "All-Edge"
    assert by_cell[("GPU/WiFi", 30.0, "latency")] != "All-Edge"
    assert by_cell[("CPU/LTE", 16.1, "latency")] in ("All-Cloud", "Split@pool5")
    assert by_cell[("CPU/LTE", 0.5, "latency")] == "All-Edge"
