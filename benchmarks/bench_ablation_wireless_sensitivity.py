"""Ablation — sensitivity of the search outcome to the design-time throughput.

LENS's central premise is that the expected wireless conditions belong in the
design-time objectives.  This ablation runs the partition-aware evaluation of
a fixed set of candidate architectures under several design-time throughput
expectations and device/radio pairings, and reports how the preferred
deployment mix and the achievable energy floor change — the library-level
generalisation of Table I from a single hand-designed model (AlexNet) to the
search space itself.
"""

from __future__ import annotations

from collections import Counter

from conftest import save_table

from repro.hardware.device import jetson_tx2_cpu, jetson_tx2_gpu
from repro.hardware.predictors import OracleLayerPredictor
from repro.partition.partitioner import PartitionAnalyzer
from repro.utils.serialization import format_table
from repro.wireless.channel import WirelessChannel

#: Design-time throughput expectations swept by the ablation (Mbps).
UPLINKS_MBPS = (0.7, 3.0, 7.5, 16.1, 30.0)
NUM_CANDIDATES = 40


def run_sensitivity(search_space):
    candidates = [
        search_space.decode_for_performance(search_space.sample(seed))
        for seed in range(NUM_CANDIDATES)
    ]
    configurations = [
        ("GPU/WiFi", OracleLayerPredictor(jetson_tx2_gpu()), "wifi"),
        ("CPU/LTE", OracleLayerPredictor(jetson_tx2_cpu()), "lte"),
    ]
    rows = []
    for label, predictor, technology in configurations:
        for uplink in UPLINKS_MBPS:
            channel = WirelessChannel.create(technology, uplink, 0.01)
            analyzer = PartitionAnalyzer(predictor, channel)
            evaluations = [analyzer.evaluate(arch) for arch in candidates]
            energy_winners = Counter(e.best_energy.option.kind for e in evaluations)
            latency_winners = Counter(e.best_latency.option.kind for e in evaluations)
            best_energy_mj = min(e.best_energy.energy_j for e in evaluations) * 1e3
            rows.append(
                {
                    "configuration": label,
                    "uplink_mbps": uplink,
                    "energy_pref_split": energy_winners.get("split", 0),
                    "energy_pref_all_edge": energy_winners.get("all_edge", 0),
                    "energy_pref_all_cloud": energy_winners.get("all_cloud", 0),
                    "latency_pref_split": latency_winners.get("split", 0),
                    "latency_pref_all_edge": latency_winners.get("all_edge", 0),
                    "latency_pref_all_cloud": latency_winners.get("all_cloud", 0),
                    "best_energy_mj": best_energy_mj,
                }
            )
    return rows


def test_ablation_design_time_throughput_sensitivity(benchmark, search_space):
    """How the best-deployment mix over the search space shifts with the expected tu."""
    rows = benchmark.pedantic(run_sensitivity, args=(search_space,), rounds=1, iterations=1)

    table_rows = [
        [
            row["configuration"],
            row["uplink_mbps"],
            f"{row['energy_pref_all_edge']}/{row['energy_pref_split']}/{row['energy_pref_all_cloud']}",
            f"{row['latency_pref_all_edge']}/{row['latency_pref_split']}/{row['latency_pref_all_cloud']}",
            round(row["best_energy_mj"], 1),
        ]
        for row in rows
    ]
    headers = [
        "config",
        "expected tu (Mbps)",
        "energy winners edge/split/cloud",
        "latency winners edge/split/cloud",
        "energy floor (mJ)",
    ]
    text = (
        f"Ablation — deployment preferences of {NUM_CANDIDATES} sampled candidates "
        "vs the design-time throughput expectation\n" + format_table(table_rows, headers)
    )
    print("\n" + text)
    save_table("ablation_wireless_sensitivity", text, {"rows": rows})

    gpu_rows = {row["uplink_mbps"]: row for row in rows if row["configuration"] == "GPU/WiFi"}
    # Offloading (split or cloud) should become more attractive as tu grows.
    offload_low = gpu_rows[0.7]["energy_pref_split"] + gpu_rows[0.7]["energy_pref_all_cloud"]
    offload_high = gpu_rows[30.0]["energy_pref_split"] + gpu_rows[30.0]["energy_pref_all_cloud"]
    assert offload_high >= offload_low
    # The reachable energy floor can only improve (or stay) as tu grows.
    assert gpu_rows[30.0]["best_energy_mj"] <= gpu_rows[0.7]["best_energy_mj"] + 1e-6
