"""Bring your own search space, device profile and wireless expectation.

LENS is not tied to the paper's VGG-derived space or to the Jetson TX2: the
search space, the edge-device profile, the radio technology and the accuracy
model are all pluggable.  This example

1. defines a narrower search space (3 blocks, small filter counts) aimed at a
   weaker edge device, and registers it by name so request envelopes, campaign
   grids and the CLI can all address it as ``search_space="lens-narrow"``;
2. defines a custom device profile (a microcontroller-class accelerator);
3. trains the per-layer performance predictors for that device from simulated
   profiling data;
4. runs LENS under an LTE expectation and prints the recommended designs.

Run with:  python examples/custom_search_space_and_device.py
"""

from __future__ import annotations

from repro import (
    LensConfig,
    LensSearch,
    LensSearchSpace,
    SearchRequest,
    register_search_space,
)
from repro.hardware.device import DeviceProfile
from repro.hardware.predictors import LayerPerformancePredictor
from repro.utils.serialization import format_table


def build_custom_device() -> DeviceProfile:
    """A microcontroller-class NPU: little compute, little bandwidth, low power."""
    return DeviceProfile(
        name="tiny-npu",
        kind="edge",
        compute_rate_flops={"default": 4e9, "conv": 6e9, "fc": 8e9, "pool": 2e9},
        memory_bandwidth_bps=1.5e9,
        layer_overhead_s=30e-6,
        idle_power_w=0.15,
        busy_power_w=1.1,
    )


class NarrowLensSpace(LensSearchSpace):
    """Three-block space with thin layers, as appropriate for the tiny device."""

    space_name = "lens-narrow"

    def __init__(self):
        super().__init__(
            num_blocks=3,
            layers_per_block=(1, 2),
            kernel_sizes=(3, 5),
            filter_counts=(8, 16, 32, 64),
            fc_units=(64, 128, 256),
            min_pool_layers=2,
            num_classes=10,
            accuracy_input_shape=(3, 32, 32),
            performance_input_shape=(3, 96, 96),
        )


def build_custom_space() -> LensSearchSpace:
    """Instantiate and register the narrow space under its own name.

    After registration, ``SearchRequest(search_space="lens-narrow", ...)``,
    campaign grids and ``repro run --search-space lens-narrow`` all resolve
    it — this script keeps using the instance directly, but the envelope
    below shows the by-name declaration.  Note: parallel campaign workers
    re-import registries in fresh processes, so a space registered in a
    script like this one is only visible to them if the registering module
    is imported by the workers too (or run with ``workers=1``).
    """
    register_search_space(NarrowLensSpace.space_name, NarrowLensSpace, overwrite=True)
    request = SearchRequest(search_space="lens-narrow", strategy="lens")
    print(f"registered {NarrowLensSpace.space_name!r}; "
          f"request fingerprint {request.fingerprint()}")
    return NarrowLensSpace()


def main() -> None:
    device = build_custom_device()
    space = build_custom_space()
    print(space.describe())

    print("\nTraining per-layer latency/power predictors for the custom device...")
    predictor = LayerPerformancePredictor.train_for_device(
        device, noise_std=0.05, samples_per_type=120, seed=0
    )
    for family, scores in sorted(predictor.training_scores.items()):
        print(f"  {family}: latency R^2 = {scores['latency_r2']:.3f} "
              f"({int(scores['samples'])} profiled configurations)")

    config = LensConfig(
        wireless_technology="lte",
        expected_uplink_mbps=2.0,
        round_trip_s=0.03,
        device=device,
        num_initial=12,
        num_iterations=28,
        seed=11,
    )
    search = LensSearch(search_space=space, config=config, predictor=predictor)
    print(f"\nRunning LENS for {device.name} over LTE @ {config.expected_uplink_mbps} Mbps...")
    result = search.run()

    front = sorted(
        result.pareto_candidates(("error_percent", "energy_j")),
        key=lambda c: c.error_percent,
    )
    rows = [
        [
            candidate.architecture_name,
            round(candidate.error_percent, 1),
            round(candidate.energy_mj, 2),
            round(candidate.latency_ms, 1),
            candidate.best_energy_option.label,
        ]
        for candidate in front
    ]
    print(f"\nPareto-optimal designs ({len(front)} of {len(result)} explored):\n")
    print(format_table(rows, ["model", "error %", "energy mJ", "latency ms", "deployment"]))


if __name__ == "__main__":
    main()
