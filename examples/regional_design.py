"""Designing for different regions: LENS with region-specific expectations.

The same application deployed in South Korea (16.1 Mbps average uplink), the
USA (7.5 Mbps) and Afghanistan (0.7 Mbps) faces very different communication
costs.  This example runs one reduced-budget LENS search per region — each
with the region's average throughput as the design-time expectation — and
compares the energy-optimal models and their preferred deployments.  It shows
LENS recommending offload-friendly designs where the uplink is fast and
edge-heavy designs where it is slow.

Run with:  python examples/regional_design.py
"""

from __future__ import annotations

from repro import LensConfig, LensSearch
from repro.hardware.predictors import LayerPerformancePredictor
from repro.hardware.device import jetson_tx2_gpu
from repro.utils.serialization import format_table
from repro.wireless.regions import paper_regions


def main() -> None:
    # Train the per-layer performance predictors once; they are device-specific,
    # not region-specific, so all searches share them.
    predictor = LayerPerformancePredictor.train_for_device(
        jetson_tx2_gpu(), noise_std=0.03, samples_per_type=150, seed=0
    )

    rows = []
    for region in paper_regions():
        config = LensConfig(
            wireless_technology="wifi",
            expected_uplink_mbps=region.avg_uplink_mbps,
            num_initial=12,
            num_iterations=36,
            seed=42,
        )
        search = LensSearch(config=config, predictor=predictor)
        result = search.run()
        best_energy = result.best_by("energy_j")
        balanced = min(
            result.pareto_candidates(("error_percent", "energy_j")),
            key=lambda c: c.error_percent + c.energy_mj / 10.0,
        )
        rows.append(
            [
                region.name,
                region.avg_uplink_mbps,
                round(best_energy.energy_mj, 1),
                best_energy.best_energy_option.label,
                round(balanced.error_percent, 1),
                round(balanced.energy_mj, 1),
                balanced.best_energy_option.label,
            ]
        )
        print(
            f"{region.name:>12} ({region.avg_uplink_mbps:>4.1f} Mbps): "
            f"explored {len(result)} candidates, "
            f"energy floor {best_energy.energy_mj:.1f} mJ via "
            f"{best_energy.best_energy_option.label}"
        )

    headers = [
        "region",
        "tu Mbps",
        "best energy mJ",
        "its deployment",
        "balanced error %",
        "balanced energy mJ",
        "its deployment",
    ]
    print("\nRegion-specific design summary:\n")
    print(format_table(rows, headers))
    print(
        "\nFaster uplinks let LENS lean on partitioned/cloud deployments and reach "
        "lower energy, while slow uplinks push the designs back onto the edge."
    )


if __name__ == "__main__":
    main()
