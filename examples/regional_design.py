"""Designing for different regions: LENS with region-specific expectations.

The same application deployed in South Korea (16.1 Mbps average uplink), the
USA (7.5 Mbps) and Afghanistan (0.7 Mbps) faces very different communication
costs.  This example derives one scenario per region of the paper's Table I
catalogue with :meth:`Scenario.from_region` (the registry also ships LTE
presets under ``region-<name>-lte/<device>``) and runs one reduced-budget LENS
search per scenario, all backed by a single evaluation engine — the
device-specific performance predictor is trained once and every run shares
it through the engine's cache.  It shows LENS recommending offload-friendly
designs where the uplink is fast and edge-heavy designs where it is slow.

Run with:  python examples/regional_design.py
"""

from __future__ import annotations

from repro.api import EvaluationEngine, Scenario, run_search
from repro.utils.serialization import format_table
from repro.wireless.regions import paper_regions

#: The paper's GPU/WiFi configuration, at each region's average uplink.
SCENARIOS = [
    Scenario.from_region(region, device="jetson-tx2-gpu", wireless_technology="wifi")
    for region in paper_regions()
]


def main() -> None:
    # One engine backs every run: the first search trains the TX2-GPU
    # predictor, the remaining ones reuse it from the cache.
    engine = EvaluationEngine()

    rows = []
    for scenario in SCENARIOS:
        outcome = run_search(
            scenario=scenario,
            strategy="lens",
            num_initial=12,
            num_iterations=36,
            predictor_samples_per_type=150,
            seed=42,
            engine=engine,
        )
        best_energy = outcome.best_by("energy_j")
        balanced = min(
            outcome.pareto_candidates(("error_percent", "energy_j")),
            key=lambda c: c.error_percent + c.energy_mj / 10.0,
        )
        rows.append(
            [
                scenario.region,
                scenario.uplink_mbps,
                round(best_energy.energy_mj, 1),
                best_energy.best_energy_option.label,
                round(balanced.error_percent, 1),
                round(balanced.energy_mj, 1),
                balanced.best_energy_option.label,
            ]
        )
        stats = outcome.engine_stats
        print(
            f"{scenario.region:>12} ({scenario.uplink_mbps:>4.1f} Mbps): "
            f"explored {len(outcome)} candidates in {outcome.wall_time_s:.1f} s, "
            f"energy floor {best_energy.energy_mj:.1f} mJ via "
            f"{best_energy.best_energy_option.label} "
            f"(predictor cache: {stats['predictor_hits']} hits)"
        )

    headers = [
        "region",
        "tu Mbps",
        "best energy mJ",
        "its deployment",
        "balanced error %",
        "balanced energy mJ",
        "its deployment",
    ]
    print("\nRegion-specific design summary:\n")
    print(format_table(rows, headers))
    print(
        "\nFaster uplinks let LENS lean on partitioned/cloud deployments and reach "
        "lower energy, while slow uplinks push the designs back onto the edge."
    )


if __name__ == "__main__":
    main()
