"""Motivational example: per-layer analysis and deployment choices for AlexNet.

Reproduces the paper's Section II study interactively:

1. the per-layer output sizes and latency shares of AlexNet on an embedded
   GPU (Fig. 1), showing that only layers from Pool5 onward are viable
   partition points and that the FC layers dominate the execution time;
2. how the best deployment option (All-Edge, split, All-Cloud) changes with
   the upload throughput for GPU/WiFi and CPU/LTE configurations (Fig. 2);
3. the preferred deployment in three regions with very different average
   upload throughput (Table I).

Run with:  python examples/alexnet_deployment_analysis.py
"""

from __future__ import annotations

from repro import build_alexnet, jetson_tx2_cpu, jetson_tx2_gpu
from repro.analysis.deployment_sweep import (
    DeploymentConfiguration,
    regional_preferences,
    sweep_deployments,
)
from repro.analysis.per_layer import latency_share_by_type, per_layer_report
from repro.hardware.predictors import OracleLayerPredictor
from repro.utils.serialization import format_table
from repro.wireless.regions import paper_regions


def per_layer_section(alexnet, gpu) -> None:
    print("=" * 72)
    print("1. Per-layer analysis of AlexNet on the TX2-class GPU (paper Fig. 1)")
    print("=" * 72)
    rows = [
        [
            entry.name,
            round(entry.output_kilobytes, 1),
            round(entry.latency_s * 1e3, 2),
            round(entry.latency_share_percent, 1),
            "yes" if entry.smaller_than_input else "no",
        ]
        for entry in per_layer_report(alexnet, gpu)
    ]
    print(format_table(rows, ["layer", "output kB", "latency ms", "share %", "viable split"]))
    shares = latency_share_by_type(alexnet, gpu)
    print(f"\nFully-connected layers account for {shares['fc']:.1f}% of the latency; "
          f"the raw input is {alexnet.input_bytes / 1024:.0f} kB.\n")


def throughput_section(alexnet, gpu, cpu) -> None:
    print("=" * 72)
    print("2. Best deployment vs upload throughput (paper Fig. 2)")
    print("=" * 72)
    configurations = [
        DeploymentConfiguration("GPU/WiFi", gpu, "wifi"),
        DeploymentConfiguration("CPU/LTE", cpu, "lte"),
    ]
    rows = [
        [row.configuration, row.uplink_mbps, row.metric, row.best_option]
        for row in sweep_deployments(
            alexnet, configurations, (0.7, 3.0, 7.5, 16.1, 30.0)
        )
    ]
    print(format_table(rows, ["config", "tu Mbps", "metric", "best option"]))
    print()


def regional_section(alexnet, gpu, cpu) -> None:
    print("=" * 72)
    print("3. Preferred deployment per region (paper Table I)")
    print("=" * 72)
    configurations = [
        DeploymentConfiguration("GPU/WiFi", gpu, "wifi"),
        DeploymentConfiguration("CPU/LTE", cpu, "lte"),
    ]
    rows = [
        [row.region, row.uplink_mbps, row.configuration, row.metric, row.best_option]
        for row in regional_preferences(alexnet, configurations, paper_regions())
    ]
    print(format_table(rows, ["region", "avg tu Mbps", "config", "metric", "best option"]))
    print("\nThe same model prefers different deployments in different regions — "
          "which is why LENS folds the expected wireless conditions into the "
          "design-time objectives.")


def main() -> None:
    alexnet = build_alexnet()
    gpu = OracleLayerPredictor(jetson_tx2_gpu())
    cpu = OracleLayerPredictor(jetson_tx2_cpu())
    per_layer_section(alexnet, gpu)
    throughput_section(alexnet, gpu, cpu)
    regional_section(alexnet, gpu, cpu)


if __name__ == "__main__":
    main()
