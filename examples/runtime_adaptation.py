"""Runtime adaptation: threshold analysis and dynamic deployment switching.

After LENS selects a model and its best deployment for the *expected*
conditions, the deployed system still faces throughput variability.  This
example reproduces the paper's Section IV-E / Fig. 8 workflow for one model:

1. pick an energy-efficient model from a LENS Pareto frontier;
2. compute the throughput thresholds at which its deployment options swap
   places (pairwise comparison of the accumulated cost equations);
3. replay a synthetic LTE throughput trace (40 samples, one every 5 minutes)
   against the fixed deployments and the dynamic throughput-tracking switcher.

Run with:  python examples/runtime_adaptation.py
"""

from __future__ import annotations

from repro import LensConfig, LensSearch
from repro.analysis.runtime_eval import run_runtime_study
from repro.utils.serialization import format_table
from repro.wireless.traces import generate_lte_trace


def main() -> None:
    config = LensConfig(
        wireless_technology="lte",
        expected_uplink_mbps=7.0,
        num_initial=12,
        num_iterations=28,
        seed=3,
    )
    search = LensSearch(config=config)
    print("Searching for candidate models (reduced budget)...")
    result = search.run()

    front = result.pareto_candidates(("error_percent", "energy_j"))
    model = min(front, key=lambda c: c.energy_j)
    architecture = search.search_space.decode_for_performance(model.genotype)
    print(
        f"Selected model {model.architecture_name}: "
        f"{model.error_percent:.1f}% error, {model.energy_mj:.1f} mJ via "
        f"{model.best_energy_option.label}"
    )

    trace = generate_lte_trace(num_samples=40, period_s=300, mean_mbps=7.0, seed=9)
    print(
        f"\nReplaying an LTE throughput trace: mean {trace.mean_mbps:.1f} Mbps, "
        f"range [{trace.min_mbps:.1f}, {trace.max_mbps:.1f}] Mbps"
    )

    study = run_runtime_study(
        model.architecture_name,
        architecture,
        search.predictor,
        search.channel,
        trace,
        metric="energy",
        include_all_edge=True,
        include_all_cloud=True,
    )

    if study.switching_threshold_mbps is not None:
        print(
            f"Switching threshold between the two dominant options: "
            f"{study.switching_threshold_mbps:.2f} Mbps"
        )

    rows = []
    dynamic_total = study.comparison.cumulative["dynamic"]
    for label, total in sorted(study.comparison.cumulative.items(), key=lambda kv: kv[1]):
        gain = (
            "-"
            if label == "dynamic"
            else f"{study.comparison.improvement_percent(label):.2f}%"
        )
        rows.append([label, round(total, 3), gain])
    print("\nCumulative energy over the trace (lower is better):\n")
    print(format_table(rows, ["strategy", "energy J", "dynamic saves"]))
    print(
        f"\nThe dynamic switcher changed deployment {study.comparison.num_switches} "
        f"times and never does worse than the best fixed option "
        f"({dynamic_total:.3f} J total)."
    )


if __name__ == "__main__":
    main()
