"""Parallel search campaign with a persistent, resumable run store.

The paper's headline comparisons (Fig. 2/6, Table I) come from running the
same search under many device x wireless conditions.  This example declares
that grid once as a :class:`~repro.campaign.gridspec.CampaignSpec` (three
scenarios x two strategies), fans it out over worker processes into a
JSONL-backed :class:`~repro.campaign.store.RunStore`, then *re-runs the
campaign* to show resume semantics: every cell is already fingerprinted in
the store, so nothing executes twice.  Finally the store is aggregated into
per-scenario winners — the strategy owning the largest share of each
scenario's combined Pareto front.

The same flow is scriptable without Python; see ``docs/cli.md``:

    python -m repro campaign --spec spec.json --store runs/demo --workers 4
    python -m repro report --store runs/demo

Run with:  python examples/parallel_campaign.py [store-directory]
"""

from __future__ import annotations

import sys
import tempfile

from repro.analysis.reporting import summarize_campaign
from repro.campaign import CampaignSpec, RunStore, run_campaign
from repro.utils.serialization import format_table


def main() -> None:
    spec = CampaignSpec(
        scenarios=(
            "wifi-3mbps/jetson-tx2-gpu",
            "lte-3mbps/jetson-tx2-gpu",
            "3g-3mbps/jetson-tx2-cpu",
        ),
        strategies=("lens", "random"),
        seeds=(0,),
        num_initial=10,
        num_iterations=30,
        candidate_pool_size=64,
    )
    directory = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-campaign-"
    )
    store = RunStore(directory)
    print(f"Campaign: {spec.num_cells} cells into {store.directory}")

    result = run_campaign(spec, store, workers=4)
    print(f"first pass:  executed {len(result.executed)}, "
          f"skipped {len(result.skipped)} ({result.wall_time_s:.1f}s, "
          f"{result.workers} workers)")

    # Re-running the identical grid resumes from the store: zero executions.
    # Interrupting the first pass and re-running behaves the same way — only
    # the unfinished cells execute.
    resumed = run_campaign(spec, store, workers=4)
    print(f"second pass: executed {len(resumed.executed)}, "
          f"skipped {len(resumed.skipped)} ({resumed.wall_time_s:.2f}s)")

    summary = summarize_campaign(store.outcomes())
    rows = [
        [cell.scenario, cell.strategy, cell.num_candidates, cell.pareto_size,
         round(cell.best["error_percent"], 2),
         round(cell.best["energy_j"] * 1e3, 1)]
        for cell in summary.cells
    ]
    print()
    print(format_table(
        rows,
        ["scenario", "strategy", "candidates", "pareto", "best err %", "best mJ"],
    ))
    print("\nPer-scenario winners (largest combined-frontier share):")
    for winner in summary.winners:
        share = winner.shares[winner.winner]
        print(f"  {winner.scenario:<28} {winner.winner:<12} "
              f"({100 * share:.0f}% of a {winner.front_size}-point front)")
    print(f"\nstore persisted at {store.directory} "
          f"(runs.jsonl + index.json, {len(store)} runs)")


if __name__ == "__main__":
    main()
