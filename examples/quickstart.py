"""Quickstart: run a small LENS search and inspect its Pareto-optimal models.

LENS searches for architectures for a two-tier edge-cloud deployment, costing
every candidate according to its best layer-partitioning option under the
*expected* wireless conditions.  This example declares the run through the
unified experiment API — scenario and strategy by name, budgets in a
versioned request envelope — executes it (the paper uses 300 evaluations;
here we use 60 so the script finishes in a few seconds), and prints the
resulting error/energy Pareto frontier together with each model's preferred
deployment.  The outcome round-trips through JSON, so the same run can be
persisted and replayed.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import SearchRequest, run_search
from repro.utils.serialization import format_table


def main() -> None:
    request = SearchRequest(
        scenario="wifi-3mbps/jetson-tx2-gpu",  # device + radio + expected uplink
        strategy="lens",                       # partition-aware MOBO (Algorithm 2)
        num_initial=15,                        # random initialisation budget
        num_iterations=45,                     # Bayesian-optimization budget
        seed=0,
    )
    print(
        f"Running {request.strategy} search ({request.num_evaluations} evaluations, "
        f"scenario {request.scenario_name})..."
    )
    outcome = run_search(request)
    result = outcome.result

    front = outcome.pareto_candidates(("error_percent", "energy_j"))
    front = sorted(front, key=lambda c: c.error_percent)
    rows = [
        [
            candidate.architecture_name,
            round(candidate.error_percent, 2),
            round(candidate.energy_mj, 1),
            round(candidate.latency_ms, 1),
            candidate.best_energy_option.label,
            round(candidate.all_edge_energy_j * 1e3, 1),
        ]
        for candidate in front
    ]
    headers = ["model", "error %", "energy mJ", "latency ms", "best deployment", "All-Edge mJ"]
    print(f"\nExplored {len(result)} architectures in {outcome.wall_time_s:.1f} s; "
          f"{len(front)} are Pareto-optimal on (error, energy):\n")
    print(format_table(rows, headers))

    best_energy = outcome.best_by("energy_j")
    print(
        f"\nMost energy-efficient model: {best_energy.architecture_name} at "
        f"{best_energy.energy_mj:.1f} mJ using {best_energy.best_energy_option.label} "
        f"(All-Edge would cost {best_energy.all_edge_energy_j * 1e3:.1f} mJ)."
    )

    # The whole run — request, scenario, every candidate — is plain data:
    payload = outcome.to_dict()
    print(
        f"\nOutcome serialises to {len(payload['candidates'])} candidate records "
        "(outcome.to_dict() -> json.dumps(...) -> SearchOutcome.from_dict)."
    )


if __name__ == "__main__":
    main()
