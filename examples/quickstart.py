"""Quickstart: run a small LENS search and inspect its Pareto-optimal models.

LENS searches for architectures for a two-tier edge-cloud deployment, costing
every candidate according to its best layer-partitioning option under the
*expected* wireless conditions.  This example runs a reduced-budget search
(the paper uses 300 evaluations; here we use 60 so the script finishes in a
few seconds) and prints the resulting error/energy Pareto frontier together
with each model's preferred deployment.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import LensConfig, LensSearch
from repro.utils.serialization import format_table


def main() -> None:
    config = LensConfig(
        wireless_technology="wifi",     # the radio the edge device will use
        expected_uplink_mbps=3.0,       # the design-time throughput expectation
        round_trip_s=0.01,              # measured average round-trip time
        device="jetson-tx2-gpu",        # edge device profile
        num_initial=15,                 # random initialisation budget
        num_iterations=45,              # Bayesian-optimization budget
        seed=0,
    )
    search = LensSearch(config=config)
    print("Running LENS search "
          f"({config.num_initial + config.num_iterations} evaluations, "
          f"{config.wireless_technology} @ {config.expected_uplink_mbps} Mbps)...")
    result = search.run()

    front = result.pareto_candidates(("error_percent", "energy_j"))
    front = sorted(front, key=lambda c: c.error_percent)
    rows = [
        [
            candidate.architecture_name,
            round(candidate.error_percent, 2),
            round(candidate.energy_mj, 1),
            round(candidate.latency_ms, 1),
            candidate.best_energy_option.label,
            round(candidate.all_edge_energy_j * 1e3, 1),
        ]
        for candidate in front
    ]
    headers = ["model", "error %", "energy mJ", "latency ms", "best deployment", "All-Edge mJ"]
    print(f"\nExplored {len(result)} architectures; "
          f"{len(front)} are Pareto-optimal on (error, energy):\n")
    print(format_table(rows, headers))

    best_energy = result.best_by("energy_j")
    print(
        f"\nMost energy-efficient model: {best_energy.architecture_name} at "
        f"{best_energy.energy_mj:.1f} mJ using {best_energy.best_energy_option.label} "
        f"(All-Edge would cost {best_energy.all_edge_energy_j * 1e3:.1f} mJ)."
    )


if __name__ == "__main__":
    main()
