"""Train a sampled candidate architecture with the numpy CNN substrate.

The NAS experiments use the analytic accuracy surrogate for speed, but the
library also ships a complete from-scratch training path (im2col convolution,
max pooling, dense layers, softmax cross-entropy, SGD with momentum).  This
example samples a small candidate from a reduced search space, decodes it for
a 16x16 synthetic image dataset, trains it for a few epochs and reports the
learning curve — demonstrating that decoded architectures are genuinely
executable, not just cost-model stand-ins.

Run with:  python examples/train_candidate_cnn.py
"""

from __future__ import annotations

from repro.accuracy.dataset import SyntheticImageDataset
from repro.accuracy.network import NumpyCNN
from repro.accuracy.trainer import SGDTrainer
from repro.nn.search_space import LensSearchSpace
from repro.utils.serialization import format_table


def main() -> None:
    # A reduced space so the decoded model is small enough to train on a CPU
    # in seconds: two blocks, thin filters, one small FC layer.
    space = LensSearchSpace(
        num_blocks=2,
        layers_per_block=(1, 2),
        kernel_sizes=(3,),
        filter_counts=(8, 16),
        fc_units=(32, 64),
        min_pool_layers=2,
        num_classes=4,
        accuracy_input_shape=(3, 16, 16),
    )
    genotype = space.sample(7)
    architecture = space.decode_for_accuracy(genotype)
    print("Sampled candidate architecture:\n")
    print(architecture.describe())

    dataset = SyntheticImageDataset.generate(
        num_classes=4, num_train=240, num_test=80, image_shape=(3, 16, 16), seed=1
    )
    network = NumpyCNN(architecture, seed=0)
    print(
        f"\nTraining on the synthetic dataset "
        f"({dataset.num_train} train / {dataset.num_test} test images, "
        f"{network.num_parameters():,} parameters)..."
    )
    trainer = SGDTrainer(learning_rate=0.02, momentum=0.9, batch_size=32, epochs=6, seed=0)
    history = trainer.fit(network, dataset)

    rows = [
        [epoch + 1, round(loss, 4), round(train_error, 1), round(test_error, 1)]
        for epoch, (loss, train_error, test_error) in enumerate(
            zip(history.losses, history.train_errors, history.test_errors)
        )
    ]
    print()
    print(format_table(rows, ["epoch", "train loss", "train error %", "test error %"]))
    chance = 100.0 * (1 - 1 / dataset.num_classes)
    print(
        f"\nFinal test error {history.final_test_error:.1f}% "
        f"(chance level {chance:.0f}%)."
    )


if __name__ == "__main__":
    main()
