"""Acquisition ablation campaign: epdc vs ts/ucb/mean/random on every space.

PR 8's EPDC subsystem (``docs/acquisitions.md``) adds an acquisition axis
to :class:`~repro.campaign.gridspec.CampaignSpec` and per-iteration front
telemetry to every outcome.  This example closes that loop: it declares one
grid — all five acquisition strategies x all three registered search
spaces — runs it into a resumable store, then compares the strategies with
the exact 3-D hypervolume under a *shared* reference box per space (the
per-run telemetry boxes are progress signals; cross-run comparisons need
one common box, see ``docs/acquisitions.md#hypervolume-telemetry``).

The CLI spelling of the same grid:

    python -m repro campaign --scenario wifi-3mbps/jetson-tx2-gpu \
        --search-space lens-vgg --search-space resnet-v1 \
        --search-space seq-conv1d \
        --acquisition ts --acquisition ucb --acquisition mean \
        --acquisition random --acquisition epdc \
        --batch-size 4 --store runs/acq-ablation
    python -m repro report --store runs/acq-ablation

Run with:  python examples/acquisition_ablation_campaign.py [store-directory]
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro.campaign import CampaignSpec, RunStore, run_campaign
from repro.optim.pareto import hypervolume, pareto_front_mask
from repro.utils.serialization import format_table

OBJECTIVES = ("error_percent", "latency_s", "energy_j")


def main() -> None:
    spec = CampaignSpec(
        scenarios=("wifi-3mbps/jetson-tx2-gpu",),
        search_spaces=("lens-vgg", "resnet-v1", "seq-conv1d"),
        strategies=("lens",),
        acquisitions=("ts", "ucb", "mean", "random", "epdc"),
        batch_size=4,
        seeds=(0,),
        num_initial=8,
        num_iterations=16,
        candidate_pool_size=32,
        predictor_samples_per_type=60,
    )
    directory = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-acq-ablation-"
    )
    store = RunStore(directory)
    print(f"Ablation campaign: {spec.num_cells} cells into {store.directory}")
    result = run_campaign(spec, store, workers=4)
    print(f"executed {len(result.executed)}, skipped {len(result.skipped)} "
          f"({result.wall_time_s:.1f}s, {result.workers} workers)\n")

    # Group the stored outcomes by search space; one shared reference box
    # per space makes the acquisition hypervolumes directly comparable.
    by_space: dict = {}
    for outcome in store.outcomes():
        by_space.setdefault(outcome.request.search_space, []).append(outcome)

    for space, outcomes in sorted(by_space.items()):
        matrices = {
            o.request.acquisition: o.result.objective_matrix(OBJECTIVES)
            for o in outcomes
        }
        pooled = np.vstack(list(matrices.values()))
        reference = [float(v) * 1.05 for v in pooled.max(axis=0)]
        rows = []
        for acquisition, matrix in sorted(matrices.items()):
            front = matrix[pareto_front_mask(matrix)]
            rows.append(
                [
                    acquisition,
                    matrix.shape[0],
                    int(front.shape[0]),
                    round(hypervolume(front, reference), 4),
                ]
            )
        rows.sort(key=lambda row: -row[3])
        print(f"{space} (shared reference {[round(v, 3) for v in reference]}):")
        print(format_table(
            rows, ["acquisition", "evaluations", "front size", "hypervolume"]
        ))
        print()

    print(f"store persisted at {store.directory} ({len(store)} runs) — "
          f"`repro report --store {store.directory}` adds the per-run "
          "telemetry table")


if __name__ == "__main__":
    main()
