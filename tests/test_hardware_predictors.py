"""Tests for the per-layer latency/power regression predictors (paper IV-C)."""

import numpy as np
import pytest

from repro.hardware.predictors import (
    LayerPerformancePredictor,
    OracleLayerPredictor,
    RidgeRegression,
    prediction_error_report,
)


class TestRidgeRegression:
    def test_recovers_linear_relationship(self, rng):
        X = rng.uniform(0, 10, size=(200, 3))
        y = 2.0 * X[:, 0] - 1.5 * X[:, 1] + 0.5 * X[:, 2] + 3.0
        model = RidgeRegression(alpha=1e-6).fit(X, y)
        predictions = model.predict(X)
        assert np.allclose(predictions, y, atol=1e-6)
        assert model.score(X, y) == pytest.approx(1.0, abs=1e-9)

    def test_handles_constant_features(self, rng):
        X = np.column_stack([np.ones(50), rng.uniform(size=50)])
        y = 4.0 * X[:, 1]
        model = RidgeRegression().fit(X, y)
        assert model.score(X, y) > 0.99

    def test_requires_fit_before_predict(self):
        with pytest.raises(RuntimeError):
            RidgeRegression().predict(np.zeros((1, 2)))

    def test_rejects_mismatched_shapes_and_tiny_datasets(self):
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            RidgeRegression().fit(np.zeros((1, 2)), np.zeros(1))

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)


class TestLayerPerformancePredictor:
    def test_training_scores_are_high(self, gpu_predictor):
        scores = gpu_predictor.training_scores
        assert set(scores) == {"conv", "fc", "pool"}
        for family_scores in scores.values():
            # Latency varies over orders of magnitude and must be captured well;
            # power is nearly constant within a family (utilisation-dominated),
            # so its R^2 is not meaningful — accuracy is checked separately below.
            assert family_scores["latency_r2"] > 0.8
            assert family_scores["samples"] > 0

    def test_power_predictions_close_to_oracle(self, gpu_predictor, gpu_oracle, alexnet):
        for summary in alexnet.summarize():
            if summary.layer_type not in gpu_predictor.supported_families:
                continue
            predicted = gpu_predictor.predict_layer(summary).power_w
            oracle = gpu_oracle.predict_layer(summary).power_w
            assert predicted == pytest.approx(oracle, rel=0.25)

    def test_predictions_are_positive(self, gpu_predictor, alexnet):
        for summary, prediction in zip(
            alexnet.summarize(), gpu_predictor.predict_architecture(alexnet)
        ):
            if summary.layer_type in gpu_predictor.supported_families:
                assert prediction.latency_s > 0
            else:
                # Structural layers (flatten/dropout) are predicted as free.
                assert prediction.latency_s == 0.0
            assert prediction.power_w > 0
            assert prediction.energy_j == pytest.approx(
                prediction.latency_s * prediction.power_w
            )

    def test_total_latency_close_to_oracle(self, gpu_predictor, gpu_oracle, alexnet):
        predicted = gpu_predictor.total_latency(alexnet)
        oracle = gpu_oracle.total_latency(alexnet)
        assert predicted == pytest.approx(oracle, rel=0.35)

    def test_structural_layers_are_free(self, gpu_predictor, alexnet):
        flatten_summary = next(
            s for s in alexnet.summarize() if s.layer_type == "flatten"
        )
        prediction = gpu_predictor.predict_layer(flatten_summary)
        assert prediction.latency_s == 0.0

    def test_unfitted_predictor_raises(self, gpu_device, alexnet):
        predictor = LayerPerformancePredictor(gpu_device)
        with pytest.raises(RuntimeError):
            predictor.predict_layer(alexnet.summarize()[0])
        with pytest.raises(ValueError):
            predictor.fit({})

    def test_error_report_against_oracle(self, gpu_predictor, search_space):
        architectures = [
            search_space.decode_for_performance(search_space.sample(seed))
            for seed in range(4)
        ]
        report = prediction_error_report(gpu_predictor, architectures)
        assert report["architectures"] == 4
        assert report["latency_mape"] < 0.5
        assert report["energy_mape"] < 0.5


class TestOraclePredictor:
    def test_oracle_matches_simulator_ordering(self, gpu_oracle, cpu_oracle, alexnet):
        assert cpu_oracle.total_latency(alexnet) > gpu_oracle.total_latency(alexnet)

    def test_oracle_is_deterministic(self, gpu_oracle, alexnet):
        assert gpu_oracle.total_energy(alexnet) == gpu_oracle.total_energy(alexnet)
