"""Tests for feature extraction and the profiling-dataset generator."""

import numpy as np
import pytest

from repro.hardware.features import (
    feature_dimension,
    layer_features,
    stack_features,
)
from repro.hardware.profiler import LayerProfiler, ProfilingDataset
from repro.hardware.simulator import LayerCostSimulator


class TestFeatures:
    def test_feature_dimensions_match_extractors(self, alexnet):
        for summary in alexnet.summarize():
            features = layer_features(summary)
            assert features.shape == (feature_dimension(summary.layer_type),)
            assert np.all(np.isfinite(features))
            assert np.all(features >= 0)

    def test_conv_features_scale_with_layer_size(self, alexnet):
        by_name = {s.name: s for s in alexnet.summarize()}
        small = layer_features(by_name["conv1"])
        large = layer_features(by_name["conv2"])
        # conv2 has more MACs than conv1 (feature index 2).
        assert large[2] > small[2]

    def test_stack_features_groups_by_family(self, alexnet):
        grouped = stack_features(list(alexnet.summarize()))
        assert set(grouped) >= {"conv", "fc", "pool"}
        assert grouped["conv"].shape == (5, feature_dimension("conv"))
        assert grouped["fc"].shape == (3, feature_dimension("fc"))


class TestProfilingDataset:
    def test_validates_row_counts(self):
        with pytest.raises(ValueError):
            ProfilingDataset("conv", np.zeros((3, 2)), np.zeros(2), np.zeros(3))

    def test_len(self):
        dataset = ProfilingDataset("fc", np.zeros((4, 2)), np.zeros(4), np.ones(4))
        assert len(dataset) == 4


class TestLayerProfiler:
    @pytest.fixture(scope="class")
    def profiler(self, gpu_device):
        simulator = LayerCostSimulator(gpu_device, noise_std=0.02, rng=0)
        return LayerProfiler(simulator, samples_per_type=40, rng=0)

    def test_profile_all_families(self, profiler):
        datasets = profiler.profile_all()
        assert set(datasets) == {"conv", "fc", "pool"}
        for family, dataset in datasets.items():
            assert dataset.layer_type == family
            assert len(dataset) == 40
            assert np.all(dataset.latencies_s > 0)
            assert np.all(dataset.powers_w > 0)

    def test_profiles_cover_a_wide_latency_range(self, profiler):
        conv = profiler.profile_conv()
        assert conv.latencies_s.max() / conv.latencies_s.min() > 10

    def test_rejects_tiny_sample_budget(self, gpu_device):
        simulator = LayerCostSimulator(gpu_device)
        with pytest.raises(ValueError):
            LayerProfiler(simulator, samples_per_type=5)
