"""Graph-aware partitioning: skip edges, cut legality and linear parity."""

from __future__ import annotations

import pytest

from repro.hardware.device import jetson_tx2_gpu
from repro.hardware.predictors import OracleLayerPredictor
from repro.nn.architecture import Architecture
from repro.nn.graph import PartitionGraph, normalize_skip_edges
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D
from repro.nn.resnet_space import ResNetSearchSpace
from repro.nn.search_space import LensSearchSpace
from repro.partition.partitioner import PartitionAnalyzer, identify_partition_points
from repro.utils.rng import ensure_rng
from repro.wireless.channel import WirelessChannel


def residual_architecture() -> Architecture:
    """A tiny residual model: pool, then one two-conv block with a skip.

    The pooled feature map (8 channels x 14 x 14 floats = 6.3 kB) is far
    below the 147 kB raw input, so *every* post-pool boundary would qualify
    under the naive linear shrinkage rule — only the skip edge removes the
    block-interior boundary.
    """
    layers = [
        Conv2D(name="stem", out_channels=8, kernel_size=3),     # 0
        MaxPool2D(name="pool1", pool_size=16),                  # 1 -> (8, 14, 14)
        Conv2D(name="block_a", out_channels=8, kernel_size=3),  # 2
        Conv2D(name="block_b", out_channels=8, kernel_size=3),  # 3 (+ skip from 1)
        Flatten(name="flatten"),                                # 4
        Dense(name="classifier", units=10, activation="softmax"),
    ]
    return Architecture(
        "residual-tiny", (3, 224, 224), layers, skip_edges=((1, 3),)
    )


class TestPartitionGraph:
    def test_linear_graph_allows_everything(self):
        graph = PartitionGraph(num_layers=5)
        assert graph.is_linear
        assert graph.legal_cut_indices() == [0, 1, 2, 3]
        assert graph.blocked_cut_indices() == []

    def test_skip_edge_blocks_strict_interior_only(self):
        graph = PartitionGraph(num_layers=6, skip_edges=((1, 3),))
        assert graph.allows_cut_after(0)
        assert graph.allows_cut_after(1)  # the cut tensor IS the skip tensor
        assert not graph.allows_cut_after(2)
        assert graph.allows_cut_after(3)
        assert graph.blocked_cut_indices() == [2]

    def test_input_skip_blocks_leading_boundaries(self):
        graph = PartitionGraph(num_layers=4, skip_edges=((-1, 2),))
        assert not graph.allows_cut_after(0)
        assert not graph.allows_cut_after(1)
        assert graph.allows_cut_after(2)

    def test_edges_are_normalised_and_validated(self):
        graph = PartitionGraph(num_layers=6, skip_edges=[(3, 5), (1, 3), (3, 5)])
        assert graph.skip_edges == ((1, 3), (3, 5))
        with pytest.raises(ValueError, match="forward"):
            PartitionGraph(num_layers=6, skip_edges=((3, 1),))
        with pytest.raises(ValueError, match="exceeds"):
            PartitionGraph(num_layers=3, skip_edges=((0, 7),))
        with pytest.raises(ValueError, match="pair"):
            normalize_skip_edges([(1, 2, 3)])

    def test_consumers_and_describe(self):
        graph = PartitionGraph(num_layers=6, skip_edges=((1, 3),))
        assert graph.consumers_of(1) == [3]
        assert "blocked" in graph.describe()
        assert "linear" in PartitionGraph(num_layers=2).describe()


class TestArchitectureSkipEdges:
    def test_round_trip_and_identity(self):
        architecture = residual_architecture()
        clone = Architecture.from_dict(architecture.to_dict())
        assert clone == architecture
        assert hash(clone) == hash(architecture)
        assert clone.skip_edges == ((1, 3),)

    def test_skip_edges_distinguish_architectures(self):
        with_skip = residual_architecture()
        without = Architecture(
            with_skip.name, with_skip.input_shape, with_skip.layers
        )
        assert with_skip != without
        assert "skip_edges" not in without.to_dict()

    def test_mismatched_skip_shapes_raise(self):
        # channel-only mismatch at equal spatial size: no downsampling
        # projection explains it, so it stays a wiring error
        layers = [
            Conv2D(name="a", out_channels=8, kernel_size=3),
            Conv2D(name="b", out_channels=16, kernel_size=3),
            Conv2D(name="c", out_channels=16, kernel_size=3),
        ]
        architecture = Architecture("bad", (3, 32, 32), layers, skip_edges=((0, 2),))
        with pytest.raises(ValueError, match="incompatible shapes"):
            architecture.summarize()

    def test_downsampling_projection_skip_is_accepted(self):
        # a skip edge across a stride-2 layer (every spatial dim halved,
        # channels free) models a ResNet projection shortcut and must pass
        layers = [
            Conv2D(name="a", out_channels=8, kernel_size=3, padding="same"),
            Conv2D(
                name="down",
                out_channels=16,
                kernel_size=3,
                stride=2,
                padding="same",
            ),
            Conv2D(name="b", out_channels=16, kernel_size=3, padding="same"),
        ]
        architecture = Architecture(
            "proj", (3, 32, 32), layers, skip_edges=((0, 2),)
        )
        summaries = architecture.summarize()
        assert summaries[0].output_shape == (8, 32, 32)
        assert summaries[2].output_shape == (16, 16, 16)

    def test_rank_mismatched_skip_still_raises(self):
        # a conv feature map merged onto a flattened vector has no
        # projection interpretation at all
        layers = [
            Conv2D(name="a", out_channels=8, kernel_size=3, padding="same"),
            Flatten(name="flat"),
            Dense(name="fc", units=16),
        ]
        architecture = Architecture(
            "rank", (3, 32, 32), layers, skip_edges=((0, 2),)
        )
        with pytest.raises(ValueError, match="incompatible shapes"):
            architecture.summarize()


class TestGraphAwarePartitioner:
    @pytest.fixture
    def analyzer(self):
        predictor = OracleLayerPredictor(jetson_tx2_gpu())
        channel = WirelessChannel.create("wifi", uplink_mbps=3.0, round_trip_s=0.01)
        return PartitionAnalyzer(predictor, channel)

    def test_naive_linear_cut_would_split_the_skip(self, analyzer):
        """The block-interior boundary passes the shrinkage rule but must be
        excluded by the graph — the exact case the linear partitioner got
        wrong."""
        architecture = residual_architecture()
        summaries = architecture.summarize()
        naive = identify_partition_points(summaries, architecture.input_bytes)
        graph_aware = identify_partition_points(
            summaries, architecture.input_bytes, graph=architecture.partition_graph()
        )
        assert 2 in naive  # shrinkage alone admits the interior boundary
        assert 2 not in graph_aware
        assert set(graph_aware) == set(naive) - {2}

    def test_evaluate_never_splits_a_skip_edge(self, analyzer):
        evaluation = analyzer.evaluate(residual_architecture())
        assert 2 not in evaluation.partition_point_indices
        assert all(
            option.option.split_index != 2 for option in evaluation.split_options
        )
        # All-Edge and All-Cloud are always present regardless of the graph
        assert evaluation.all_edge.latency_s > 0
        assert evaluation.all_cloud.transferred_bytes > 0

    def test_resnet_candidates_respect_every_block(self, analyzer):
        space = ResNetSearchSpace()
        architecture = space.decode_for_performance(space.sample(ensure_rng(0)))
        evaluation = analyzer.evaluate(architecture)
        graph = architecture.partition_graph()
        for index in evaluation.partition_point_indices:
            assert graph.allows_cut_after(index)
        for src, dst in architecture.skip_edges:
            for interior in range(src + 1, dst):
                assert interior not in evaluation.partition_point_indices

    def test_lens_vgg_parity_with_linear_enumeration(self, analyzer):
        """On the linear lens-vgg space the graph-aware path must reproduce
        the original linear-chain candidates and metrics exactly."""
        space = LensSearchSpace()
        rng = ensure_rng(123)
        for _ in range(3):
            architecture = space.decode_for_performance(space.sample(rng))
            summaries = architecture.summarize()
            linear = identify_partition_points(summaries, architecture.input_bytes)
            graph_aware = identify_partition_points(
                summaries,
                architecture.input_bytes,
                graph=architecture.partition_graph(),
            )
            assert linear == graph_aware
            evaluation = analyzer.evaluate(architecture)
            assert tuple(linear) == evaluation.partition_point_indices
