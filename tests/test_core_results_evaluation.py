"""Tests for result containers and the partition-aware evaluator (Algorithm 1)."""

import numpy as np
import pytest

from repro.accuracy.surrogate import AccuracySurrogate
from repro.core.evaluation import PartitionAwareEvaluator
from repro.core.results import CandidateEvaluation, SearchResult
from repro.partition.deployment import DeploymentOption
from repro.partition.partitioner import PartitionAnalyzer


def make_candidate(error, energy_mj, latency_ms=50.0, **kwargs):
    return CandidateEvaluation(
        genotype=(0,),
        architecture_name=kwargs.pop("name", f"cand-{error}-{energy_mj}"),
        error_percent=error,
        latency_s=latency_ms / 1e3,
        energy_j=energy_mj / 1e3,
        best_latency_option=DeploymentOption.all_edge(),
        best_energy_option=DeploymentOption.all_edge(),
        all_edge_latency_s=latency_ms / 1e3,
        all_edge_energy_j=energy_mj / 1e3,
        **kwargs,
    )


class TestCandidateEvaluation:
    def test_unit_conversions(self):
        candidate = make_candidate(20.0, 250.0, latency_ms=40.0)
        assert candidate.energy_mj == pytest.approx(250.0)
        assert candidate.latency_ms == pytest.approx(40.0)

    def test_metric_lookup_and_validation(self):
        candidate = make_candidate(20.0, 250.0)
        assert candidate.metric("error_percent") == 20.0
        with pytest.raises(ValueError):
            candidate.metric("accuracy")

    def test_to_dict_round_trippable_fields(self):
        data = make_candidate(22.0, 300.0).to_dict()
        assert data["error_percent"] == 22.0
        assert data["best_energy_option"]["kind"] == "all_edge"


class TestSearchResult:
    def make_result(self):
        return SearchResult(
            [
                make_candidate(30.0, 150.0, name="a"),
                make_candidate(20.0, 250.0, name="b"),
                make_candidate(25.0, 400.0, name="c"),  # dominated by b? no: error 25>20 but energy 400>250 -> dominated
                make_candidate(18.0, 500.0, name="d"),
            ],
            label="test",
        )

    def test_pareto_front_extraction(self):
        result = self.make_result()
        front = result.pareto_candidates(("error_percent", "energy_j"))
        assert {c.architecture_name for c in front} == {"a", "b", "d"}
        assert result.pareto_objectives(("error_percent", "energy_j")).shape == (3, 2)

    def test_objective_matrix_order(self):
        result = self.make_result()
        matrix = result.objective_matrix(("error_percent", "energy_j"))
        assert matrix.shape == (4, 2)
        assert matrix[0, 0] == 30.0

    def test_best_by_metric(self):
        result = self.make_result()
        assert result.best_by("error_percent").architecture_name == "d"
        assert result.best_by("energy_j").architecture_name == "a"
        with pytest.raises(ValueError):
            SearchResult([], label="empty").best_by("error_percent")

    def test_count_satisfying_conjunction(self):
        result = self.make_result()
        assert result.count_satisfying(max_error_percent=26.0) == 3
        assert result.count_satisfying(max_energy_mj=260.0) == 2
        assert result.count_satisfying(max_error_percent=26.0, max_energy_mj=260.0) == 1
        assert result.count_satisfying(max_latency_ms=10.0) == 0

    def test_iteration_and_serialisation(self):
        result = self.make_result()
        assert len(result) == 4
        assert len(list(result)) == 4
        data = result.to_dict()
        assert data["label"] == "test"
        assert len(data["candidates"]) == 4


class TestPartitionAwareEvaluator:
    @pytest.fixture()
    def evaluator(self, search_space, gpu_oracle, wifi_channel, surrogate):
        analyzer = PartitionAnalyzer(gpu_oracle, wifi_channel)
        return PartitionAwareEvaluator(search_space, surrogate, analyzer, partition_within=True)

    def test_objectives_vector_layout(self, evaluator, search_space):
        genotype = search_space.sample(0)
        objectives, metadata = evaluator.evaluate_genotype(genotype)
        assert objectives.shape == (3,)
        error, latency, energy = objectives
        assert 0 < error < 100
        assert latency > 0 and energy > 0
        evaluation = metadata["evaluation"]
        assert evaluation.error_percent == pytest.approx(error)
        assert evaluation.latency_s == pytest.approx(latency)
        assert evaluation.energy_j == pytest.approx(energy)

    def test_partition_within_never_worse_than_all_edge(self, evaluator, search_space):
        for seed in range(5):
            genotype = search_space.sample(seed)
            _, metadata = evaluator.evaluate_genotype(genotype)
            evaluation = metadata["evaluation"]
            assert evaluation.latency_s <= evaluation.all_edge_latency_s + 1e-12
            assert evaluation.energy_j <= evaluation.all_edge_energy_j + 1e-12

    def test_partition_off_uses_all_edge_objectives(
        self, search_space, gpu_oracle, wifi_channel, surrogate
    ):
        analyzer = PartitionAnalyzer(gpu_oracle, wifi_channel)
        edge_only = PartitionAwareEvaluator(
            search_space, surrogate, analyzer, partition_within=False
        )
        genotype = search_space.sample(3)
        _, metadata = edge_only.evaluate_genotype(genotype)
        evaluation = metadata["evaluation"]
        assert evaluation.latency_s == pytest.approx(evaluation.all_edge_latency_s)
        assert evaluation.energy_j == pytest.approx(evaluation.all_edge_energy_j)

    def test_error_is_independent_of_partitioning_mode(
        self, search_space, gpu_oracle, wifi_channel, surrogate
    ):
        analyzer = PartitionAnalyzer(gpu_oracle, wifi_channel)
        lens_like = PartitionAwareEvaluator(search_space, surrogate, analyzer, True)
        trad_like = PartitionAwareEvaluator(search_space, surrogate, analyzer, False)
        genotype = search_space.sample(11)
        error_a = lens_like.evaluate_genotype(genotype)[0][0]
        error_b = trad_like.evaluate_genotype(genotype)[0][0]
        assert error_a == pytest.approx(error_b)

    def test_adapters_match_search_space(self, evaluator, search_space, rng):
        genotype = evaluator.sample_fn(rng)
        assert search_space.is_valid(genotype)
        features = evaluator.feature_fn(genotype)
        assert features.shape == (search_space.num_genes,)
        neighbours = evaluator.neighbor_fn(genotype, 3, rng)
        assert len(neighbours) == 3

    def test_extras_contain_partition_diagnostics(self, evaluator, search_space):
        _, metadata = evaluator.evaluate_genotype(search_space.sample(5))
        extras = metadata["evaluation"].extras
        assert extras["num_partition_points"] >= 0
        assert extras["total_params"] > 0
        assert extras["all_cloud_energy_j"] > 0
