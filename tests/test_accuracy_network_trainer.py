"""Tests for the numpy CNN, the SGD trainer and the synthetic dataset."""

import numpy as np
import pytest

from repro.accuracy.dataset import SyntheticImageDataset
from repro.accuracy.network import NumpyCNN
from repro.accuracy.trainer import SGDTrainer, TrainedAccuracyEvaluator
from repro.nn.architecture import Architecture
from repro.nn.layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D


def small_cnn_architecture(input_shape=(3, 8, 8), num_classes=3) -> Architecture:
    return Architecture(
        "small-cnn",
        input_shape,
        [
            Conv2D(name="conv1", out_channels=8, kernel_size=3),
            MaxPool2D(name="pool1", pool_size=2),
            Conv2D(name="conv2", out_channels=8, kernel_size=3),
            MaxPool2D(name="pool2", pool_size=2),
            Flatten(name="flatten"),
            Dense(name="fc1", units=16),
            Dropout(name="drop", rate=0.1),
            Dense(name="classifier", units=num_classes, activation="softmax"),
        ],
    )


class TestSyntheticDataset:
    def test_shapes_and_normalisation(self):
        dataset = SyntheticImageDataset.generate(
            num_classes=3, num_train=60, num_test=30, image_shape=(3, 8, 8), seed=0
        )
        assert dataset.train_images.shape == (60, 3, 8, 8)
        assert dataset.test_images.shape == (30, 3, 8, 8)
        assert dataset.image_shape == (3, 8, 8)
        assert abs(dataset.train_images.mean()) < 0.1
        assert dataset.train_images.std() == pytest.approx(1.0, abs=0.1)

    def test_labels_cover_all_classes(self):
        dataset = SyntheticImageDataset.generate(num_classes=4, num_train=200, seed=1)
        assert set(np.unique(dataset.train_labels)) == {0, 1, 2, 3}

    def test_batches_partition_training_data(self):
        dataset = SyntheticImageDataset.generate(num_train=50, num_test=10, seed=0)
        batches = list(dataset.batches(batch_size=16, rng=0))
        assert sum(len(labels) for _, labels in batches) == 50
        assert batches[0][0].shape[1:] == dataset.image_shape

    def test_generation_is_reproducible(self):
        a = SyntheticImageDataset.generate(seed=3)
        b = SyntheticImageDataset.generate(seed=3)
        assert np.array_equal(a.train_images, b.train_images)

    def test_requires_at_least_two_classes(self):
        with pytest.raises(ValueError):
            SyntheticImageDataset.generate(num_classes=1)


class TestNumpyCNN:
    def test_forward_shape_matches_ir_prediction(self):
        arch = small_cnn_architecture()
        network = NumpyCNN(arch, seed=0)
        logits = network.forward(np.random.default_rng(0).normal(size=(5, 3, 8, 8)))
        assert logits.shape == (5, 3)

    def test_parameter_count_matches_ir(self):
        arch = small_cnn_architecture()
        network = NumpyCNN(arch, seed=0)
        # The IR counts batch-norm parameters only when enabled (it is not here).
        assert network.num_parameters() == arch.total_params

    def test_rejects_non_batched_input(self):
        network = NumpyCNN(small_cnn_architecture(), seed=0)
        with pytest.raises(ValueError):
            network.forward(np.zeros((3, 8, 8)))

    def test_loss_decreases_over_gradient_steps(self):
        dataset = SyntheticImageDataset.generate(
            num_classes=3, num_train=48, num_test=24, image_shape=(3, 8, 8), seed=0
        )
        network = NumpyCNN(small_cnn_architecture(), seed=0)
        images, labels = dataset.train_images[:32], dataset.train_labels[:32]
        losses = []
        for _ in range(15):
            loss = network.loss_and_gradients(images, labels)
            losses.append(loss)
            for layer, name in network.parameters():
                layer.params[name] -= 0.05 * layer.grads[name]
        assert losses[-1] < losses[0]

    def test_error_rate_bounds(self):
        dataset = SyntheticImageDataset.generate(num_train=30, num_test=20, seed=0)
        arch = small_cnn_architecture(input_shape=dataset.image_shape, num_classes=dataset.num_classes)
        network = NumpyCNN(arch, seed=0)
        error = network.error_rate(dataset.test_images, dataset.test_labels)
        assert 0.0 <= error <= 100.0


class TestTrainer:
    def test_training_reaches_better_than_chance(self):
        dataset = SyntheticImageDataset.generate(
            num_classes=3, num_train=90, num_test=45, image_shape=(3, 8, 8),
            noise_std=0.25, seed=0,
        )
        arch = small_cnn_architecture(num_classes=3)
        network = NumpyCNN(arch, seed=1)
        trainer = SGDTrainer(learning_rate=0.05, epochs=4, batch_size=16, seed=0)
        history = trainer.fit(network, dataset)
        chance_error = 100.0 * (1 - 1 / dataset.num_classes)
        assert history.final_test_error < chance_error
        assert len(history.losses) == 4
        assert history.losses[-1] < history.losses[0]

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGDTrainer(learning_rate=0.0)
        with pytest.raises(ValueError):
            SGDTrainer(momentum=1.0)
        with pytest.raises(ValueError):
            SGDTrainer(epochs=0)

    def test_history_requires_epochs(self):
        from repro.accuracy.trainer import TrainingHistory

        with pytest.raises(ValueError):
            TrainingHistory().final_test_error


class TestTrainedAccuracyEvaluator:
    def test_returns_error_percent_for_matching_architecture(self):
        dataset = SyntheticImageDataset.generate(
            num_classes=3, num_train=45, num_test=24, image_shape=(3, 8, 8), seed=0
        )
        evaluator = TrainedAccuracyEvaluator(
            dataset=dataset, trainer=SGDTrainer(epochs=2, batch_size=16, seed=0), seed=0
        )
        error = evaluator.error_percent(
            small_cnn_architecture(input_shape=(3, 8, 8), num_classes=3)
        )
        assert 0.0 <= error <= 100.0

    def test_rejects_mismatched_input_shape(self):
        dataset = SyntheticImageDataset.generate(image_shape=(3, 8, 8), seed=0)
        evaluator = TrainedAccuracyEvaluator(dataset=dataset)
        with pytest.raises(ValueError):
            evaluator.error_percent(small_cnn_architecture(input_shape=(3, 16, 16)))
