"""Tests for repro.api.registry and repro.api.scenario."""

import pytest

from repro.api.registry import (
    ACQUISITIONS,
    DEVICES,
    WIRELESS_TECHNOLOGIES,
    Registry,
    RegistryError,
    register_device,
)
from repro.api.scenario import (
    DEFAULT_SCENARIO,
    SCENARIOS,
    Scenario,
    ScenarioRegistry,
    builtin_scenarios,
    scenario_by_name,
)
from repro.hardware.device import DeviceProfile, device_by_name


class TestRegistry:
    def test_register_get_create(self):
        registry = Registry("widget")
        registry.register("a", lambda: 41)
        assert registry.get("a")() == 41
        assert registry.create("a") == 41
        assert "a" in registry and len(registry) == 1

    def test_register_as_decorator(self):
        registry = Registry("widget")

        @registry.register("thing")
        def make_thing():
            return "thing!"

        assert registry.create("thing") == "thing!"

    def test_duplicate_registration_requires_overwrite(self):
        registry = Registry("widget", {"a": 1})
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", 2)
        registry.register("a", 2, overwrite=True)
        assert registry.get("a") == 2

    def test_unknown_name_lists_registered_and_suggests(self):
        registry = Registry("widget", {"alpha": 1, "beta": 2})
        with pytest.raises(KeyError) as excinfo:
            registry.get("alpah")
        message = str(excinfo.value)
        assert "unknown widget 'alpah'" in message
        assert "alpha" in message and "beta" in message
        assert "Did you mean 'alpha'?" in message

    def test_error_is_a_key_error(self):
        with pytest.raises(KeyError):
            Registry("widget").get("missing")
        assert issubclass(RegistryError, KeyError)


class TestBuiltinRegistries:
    def test_devices_contains_builtins(self):
        assert {"jetson-tx2-gpu", "jetson-tx2-cpu", "cloud-server"} <= set(
            DEVICES.names()
        )
        assert DEVICES.create("jetson-tx2-gpu").name == "jetson-tx2-gpu"

    def test_device_by_name_routes_through_registry(self):
        with pytest.raises(KeyError) as excinfo:
            device_by_name("jetson-tx2-gpo")
        message = str(excinfo.value)
        assert "jetson-tx2-gpu" in message and "jetson-tx2-cpu" in message
        assert "Did you mean" in message

    def test_registered_custom_device_is_found_by_name(self):
        profile = DeviceProfile(name="test-custom-npu", compute_rate_flops={"default": 1e9})
        register_device(profile, overwrite=True)
        try:
            assert device_by_name("test-custom-npu") is profile
        finally:
            DEVICES.unregister("test-custom-npu")

    def test_wireless_technologies(self):
        assert set(WIRELESS_TECHNOLOGIES.names()) == {"wifi", "lte", "3g"}
        model = WIRELESS_TECHNOLOGIES.create("wifi")
        assert model.technology == "wifi"

    def test_acquisitions(self):
        assert set(ACQUISITIONS.names()) == {"ts", "ucb", "mean", "random", "epdc"}


class TestScenario:
    def test_builtin_grid_and_regional_presets_registered(self):
        names = set(SCENARIOS.names())
        for technology in ("wifi", "lte", "3g"):
            for device in ("jetson-tx2-gpu", "jetson-tx2-cpu"):
                assert f"{technology}-3mbps/{device}" in names
        assert "region-south-korea-lte/jetson-tx2-gpu" in names
        assert "region-afghanistan-lte/jetson-tx2-cpu" in names
        assert len(builtin_scenarios()) == len(names)

    def test_default_scenario_matches_paper_configuration(self):
        scenario = scenario_by_name(DEFAULT_SCENARIO)
        assert scenario.wireless_technology == "wifi"
        assert scenario.uplink_mbps == 3.0
        assert scenario.resolve_device().name == "jetson-tx2-gpu"
        channel = scenario.build_channel()
        assert channel.technology == "wifi" and channel.uplink_mbps == 3.0

    def test_regional_preset_uses_region_throughput(self):
        scenario = scenario_by_name("region-south-korea-lte/jetson-tx2-gpu")
        assert scenario.uplink_mbps == pytest.approx(16.1)
        assert scenario.region == "South Korea"
        assert scenario.wireless_technology == "lte"

    def test_from_region_names_carry_the_technology(self):
        from repro.wireless.regions import region_by_name

        region = region_by_name("USA")
        wifi = Scenario.from_region(region, wireless_technology="wifi")
        assert wifi.name == "region-usa-wifi/jetson-tx2-gpu"
        assert wifi.name not in SCENARIOS  # no collision with the LTE preset

    def test_round_trip_with_named_device(self):
        scenario = scenario_by_name(DEFAULT_SCENARIO)
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_round_trip_with_inline_device_profile(self):
        profile = DeviceProfile(name="inline-npu", compute_rate_flops={"default": 2e9})
        scenario = Scenario(name="inline/test", device=profile, uplink_mbps=5.0)
        restored = Scenario.from_dict(scenario.to_dict())
        assert restored.resolve_device() == profile
        assert restored.name == "inline/test"

    def test_registry_resolve_accepts_names_and_objects(self):
        registry = ScenarioRegistry()
        scenario = registry.add(Scenario(name="mine", uplink_mbps=1.0))
        assert registry.resolve("mine") is scenario
        assert registry.resolve(scenario) is scenario
        with pytest.raises(KeyError):
            registry.resolve("theirs")

    def test_with_uplink_copies(self):
        base = scenario_by_name(DEFAULT_SCENARIO)
        faster = base.with_uplink(30.0, name="fast")
        assert faster.uplink_mbps == 30.0 and faster.name == "fast"
        assert base.uplink_mbps == 3.0

    def test_invalid_scenarios_rejected(self):
        with pytest.raises(ValueError):
            Scenario(name=" ", uplink_mbps=3.0)
        with pytest.raises(ValueError):
            Scenario(name="x", uplink_mbps=0.0)
