"""Tests for repro.nn.architecture."""

import numpy as np
import pytest

from repro.nn.architecture import Architecture, stack_layers
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D


def tiny_architecture() -> Architecture:
    return Architecture(
        "tiny",
        (3, 8, 8),
        [
            Conv2D(name="conv1", out_channels=4, kernel_size=3),
            MaxPool2D(name="pool1", pool_size=2),
            Flatten(name="flatten"),
            Dense(name="fc", units=10, activation="softmax"),
        ],
    )


def test_requires_at_least_one_layer():
    with pytest.raises(ValueError):
        Architecture("empty", (3, 8, 8), [])


def test_duplicate_layer_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        Architecture(
            "dup",
            (3, 8, 8),
            [Conv2D(name="conv"), Conv2D(name="conv")],
        )


def test_shape_inference_chains_layers():
    arch = tiny_architecture()
    shapes = [s.output_shape for s in arch.summarize()]
    assert shapes == [(4, 8, 8), (4, 4, 4), (64,), (10,)]
    assert arch.output_shape == (10,)


def test_summaries_are_cached():
    arch = tiny_architecture()
    assert arch.summarize() is arch.summarize()


def test_totals_are_sums_of_layers():
    arch = tiny_architecture()
    summaries = arch.summarize()
    assert arch.total_params == sum(s.params for s in summaries)
    assert arch.total_macs == sum(s.macs for s in summaries)
    assert arch.total_flops == 2 * arch.total_macs


def test_depth_counts_parameterised_layers():
    arch = tiny_architecture()
    assert arch.depth == 2
    assert arch.count_layers("pool") == 1


def test_input_bytes_default_is_one_byte_per_pixel():
    arch = tiny_architecture()
    assert arch.input_bytes == 3 * 8 * 8


def test_input_bytes_per_element_configurable():
    arch = Architecture(
        "float-input", (3, 8, 8), [Dense(name="fc", units=2)], input_bytes_per_element=4
    )
    assert arch.input_bytes == 3 * 8 * 8 * 4


def test_layer_index_lookup():
    arch = tiny_architecture()
    assert arch.layer_index("pool1") == 1
    with pytest.raises(KeyError):
        arch.layer_index("missing")


def test_output_bytes_after():
    arch = tiny_architecture()
    assert arch.output_bytes_after(0) == 4 * 8 * 8 * 4


def test_iteration_and_indexing():
    arch = tiny_architecture()
    assert len(arch) == 4
    assert arch[0].name == "conv1"
    assert [layer.name for layer in arch] == ["conv1", "pool1", "flatten", "fc"]


def test_equality_and_hash():
    a = tiny_architecture()
    b = tiny_architecture()
    assert a == b
    assert hash(a) == hash(b)
    c = Architecture("other", (3, 8, 8), list(a.layers), input_bytes_per_element=4)
    assert a != c


def test_to_dict_round_trip():
    arch = tiny_architecture()
    rebuilt = Architecture.from_dict(arch.to_dict())
    assert rebuilt == arch
    assert rebuilt.name == "tiny"


def test_describe_mentions_every_layer():
    description = tiny_architecture().describe()
    for name in ("conv1", "pool1", "flatten", "fc"):
        assert name in description


def test_stack_layers_flattens_groups():
    groups = [[Conv2D(name="a")], [Conv2D(name="b"), Conv2D(name="c")]]
    assert [layer.name for layer in stack_layers(groups)] == ["a", "b", "c"]


def test_layer_summary_to_dict_contains_key_fields():
    summary = tiny_architecture().summarize()[0]
    data = summary.to_dict()
    assert data["name"] == "conv1"
    assert data["layer_type"] == "conv"
    assert data["output_shape"] == [4, 8, 8]
    assert data["macs"] == summary.macs
