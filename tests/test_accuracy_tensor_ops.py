"""Tests for the numpy tensor operations, including gradient checks."""

import numpy as np
import pytest

from repro.accuracy import tensor_ops as ops


def numeric_gradient(function, array, epsilon=1e-5):
    """Central-difference numerical gradient of a scalar-valued function."""
    gradient = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + epsilon
        plus = function()
        array[index] = original - epsilon
        minus = function()
        array[index] = original
        gradient[index] = (plus - minus) / (2 * epsilon)
        iterator.iternext()
    return gradient


class TestIm2Col:
    def test_output_shape(self, rng):
        images = rng.normal(size=(2, 3, 8, 8))
        columns, out_h, out_w = ops.im2col(images, kernel=3, stride=1, pad=1)
        assert (out_h, out_w) == (8, 8)
        assert columns.shape == (2 * 64, 3 * 9)

    def test_col2im_is_adjoint_of_im2col(self, rng):
        """<im2col(x), y> == <x, col2im(y)> for random y (adjoint property)."""
        images = rng.normal(size=(1, 2, 6, 6))
        columns, _, _ = ops.im2col(images, kernel=3, stride=2, pad=1)
        other = rng.normal(size=columns.shape)
        lhs = np.sum(columns * other)
        rhs = np.sum(images * ops.col2im(other, images.shape, kernel=3, stride=2, pad=1))
        assert lhs == pytest.approx(rhs)

    def test_kernel_too_large_raises(self, rng):
        with pytest.raises(ValueError):
            ops.im2col(rng.normal(size=(1, 1, 4, 4)), kernel=9, stride=1, pad=0)


class TestConv2D:
    def test_matches_direct_convolution(self, rng):
        images = rng.normal(size=(1, 1, 5, 5))
        weights = rng.normal(size=(1, 1, 3, 3))
        bias = np.zeros(1)
        output, _ = ops.conv2d_forward(images, weights, bias, stride=1, pad=0)
        # Direct computation of one output element.
        expected = np.sum(images[0, 0, 0:3, 0:3] * weights[0, 0])
        assert output[0, 0, 0, 0] == pytest.approx(expected)
        assert output.shape == (1, 1, 3, 3)

    def test_gradients_match_numerical(self, rng):
        images = rng.normal(size=(2, 2, 5, 5))
        weights = rng.normal(size=(3, 2, 3, 3)) * 0.5
        bias = rng.normal(size=3) * 0.1
        target = rng.normal(size=(2, 3, 5, 5))

        def loss():
            out, _ = ops.conv2d_forward(images, weights, bias, stride=1, pad=1)
            return 0.5 * np.sum((out - target) ** 2)

        output, cache = ops.conv2d_forward(images, weights, bias, stride=1, pad=1)
        grad_output = output - target
        grad_input, grad_weights, grad_bias = ops.conv2d_backward(grad_output, cache)
        assert np.allclose(grad_weights, numeric_gradient(loss, weights), atol=1e-4)
        assert np.allclose(grad_bias, numeric_gradient(loss, bias), atol=1e-4)
        assert np.allclose(grad_input, numeric_gradient(loss, images), atol=1e-4)


class TestMaxPool:
    def test_forward_values(self):
        images = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        output, _ = ops.maxpool_forward(images, pool_size=2, stride=2)
        assert output.shape == (1, 1, 2, 2)
        assert np.array_equal(output[0, 0], np.array([[5.0, 7.0], [13.0, 15.0]]))

    def test_backward_routes_to_argmax(self):
        images = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        output, cache = ops.maxpool_forward(images, pool_size=2, stride=2)
        grad = np.ones_like(output)
        grad_input = ops.maxpool_backward(grad, cache)
        assert grad_input.sum() == pytest.approx(4.0)
        assert grad_input[0, 0, 1, 1] == 1.0  # position of value 5
        assert grad_input[0, 0, 0, 0] == 0.0

    def test_gradient_matches_numerical(self, rng):
        images = rng.normal(size=(1, 2, 6, 6))
        target = rng.normal(size=(1, 2, 3, 3))

        def loss():
            out, _ = ops.maxpool_forward(images, pool_size=2, stride=2)
            return 0.5 * np.sum((out - target) ** 2)

        output, cache = ops.maxpool_forward(images, pool_size=2, stride=2)
        grad_input = ops.maxpool_backward(output - target, cache)
        assert np.allclose(grad_input, numeric_gradient(loss, images), atol=1e-4)


class TestDenseReluSoftmax:
    def test_dense_gradients(self, rng):
        inputs = rng.normal(size=(4, 6))
        weights = rng.normal(size=(6, 3))
        bias = rng.normal(size=3)
        target = rng.normal(size=(4, 3))

        def loss():
            out, _ = ops.dense_forward(inputs, weights, bias)
            return 0.5 * np.sum((out - target) ** 2)

        output, cache = ops.dense_forward(inputs, weights, bias)
        grad_input, grad_weights, grad_bias = ops.dense_backward(output - target, cache)
        assert np.allclose(grad_weights, numeric_gradient(loss, weights), atol=1e-5)
        assert np.allclose(grad_bias, numeric_gradient(loss, bias), atol=1e-5)
        assert np.allclose(grad_input, numeric_gradient(loss, inputs), atol=1e-5)

    def test_relu(self):
        values = np.array([[-1.0, 2.0], [0.5, -3.0]])
        output, mask = ops.relu_forward(values)
        assert np.array_equal(output, np.array([[0.0, 2.0], [0.5, 0.0]]))
        grad = ops.relu_backward(np.ones_like(values), mask)
        assert np.array_equal(grad, np.array([[0.0, 1.0], [1.0, 0.0]]))

    def test_softmax_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(5, 4)) * 10
        probabilities = ops.softmax(logits)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities > 0)

    def test_softmax_is_shift_invariant(self, rng):
        logits = rng.normal(size=(3, 4))
        assert np.allclose(ops.softmax(logits), ops.softmax(logits + 100.0))

    def test_cross_entropy_loss_and_gradient(self, rng):
        logits = rng.normal(size=(6, 5))
        labels = rng.integers(0, 5, size=6)
        loss, grad = ops.softmax_cross_entropy(logits, labels)
        assert loss > 0
        # Gradient rows sum to zero (softmax minus one-hot).
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-12)

        def loss_fn():
            value, _ = ops.softmax_cross_entropy(logits, labels)
            return value

        assert np.allclose(grad, numeric_gradient(loss_fn, logits), atol=1e-5)

    def test_perfect_prediction_has_tiny_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, _ = ops.softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6
