"""End-to-end search-space plumbing: requests, engine, campaigns, reports."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import summarize_campaign
from repro.api.engine import EvaluationEngine
from repro.api.envelopes import SearchOutcome, SearchRequest
from repro.api.registry import SEARCH_SPACES, RegistryError
from repro.api.session import build_context, run_search
from repro.campaign import CampaignSpec, RunStore, run_campaign

#: Budgets small enough for the full grid to run inside the tier-1 suite.
FAST = dict(
    num_initial=2,
    num_iterations=1,
    candidate_pool_size=8,
    predictor_samples_per_type=40,
    seed=0,
)


@pytest.fixture
def engine():
    return EvaluationEngine()


class TestRunSearchAcrossSpaces:
    @pytest.mark.parametrize("space_name", ["lens-vgg", "resnet-v1", "seq-conv1d"])
    def test_produces_valid_pareto_results(self, space_name, engine):
        outcome = run_search(
            SearchRequest(strategy="random", search_space=space_name, **FAST),
            engine=engine,
        )
        assert len(outcome) == 3
        front = outcome.pareto_candidates(("error_percent", "energy_j"))
        assert 1 <= len(front) <= len(outcome)
        for candidate in outcome.candidates:
            assert candidate.error_percent > 0
            assert candidate.latency_s > 0
            assert candidate.energy_j > 0
        assert outcome.request.search_space == space_name
        assert SearchOutcome.from_dict(outcome.to_dict()).request.search_space == (
            space_name
        )

    def test_no_resnet_candidate_cuts_a_residual_edge(self, engine):
        outcome = run_search(
            SearchRequest(strategy="lens", search_space="resnet-v1", **FAST),
            engine=engine,
        )
        space = SEARCH_SPACES.create("resnet-v1")
        for candidate in outcome.candidates:
            graph = space.decode_for_performance(
                candidate.genotype
            ).partition_graph()
            for option in (
                candidate.best_latency_option, candidate.best_energy_option
            ):
                if option.is_split:
                    assert graph.allows_cut_after(option.split_index)

    def test_unknown_space_raises_suggestion_error(self, engine):
        request = SearchRequest(search_space="resnet-v2", **FAST)
        with pytest.raises(RegistryError, match="Did you mean 'resnet-v1'"):
            build_context(request, engine=engine)

    def test_context_resolves_space_by_name(self, engine):
        context = build_context(
            SearchRequest(search_space="seq-conv1d", **FAST), engine=engine
        )
        assert context.search_space.space_name == "seq-conv1d"

    def test_keyword_name_is_a_request_field(self, engine):
        """run_search(search_space="name") must route to the request (and
        its fingerprint), not the instance-override slot."""
        outcome = run_search(
            strategy="random", search_space="resnet-v1", engine=engine, **FAST
        )
        assert outcome.request.search_space == "resnet-v1"
        assert outcome.candidates[0].architecture_name.startswith("resnet-v1-")
        assert outcome.request.fingerprint() == SearchRequest(
            strategy="random", search_space="resnet-v1", **FAST
        ).fingerprint()

    def test_keyword_name_overrides_request_object(self, engine):
        base = SearchRequest(strategy="random", **FAST)
        context = build_context(base, search_space="seq-conv1d", engine=engine)
        assert context.request.search_space == "seq-conv1d"
        assert context.search_space.space_name == "seq-conv1d"

    def test_instance_override_is_recorded_in_outcome_and_fingerprint(self, engine):
        """A SearchSpace *instance* override must fold its space_name into
        the request, so the outcome is labelled correctly and never shares
        a fingerprint (store key) with a default-space run."""
        from repro.nn.seq_space import SeqConv1DSearchSpace

        base = SearchRequest(strategy="random", **FAST)
        outcome = run_search(base, search_space=SeqConv1DSearchSpace(), engine=engine)
        assert outcome.request.search_space == "seq-conv1d"
        assert outcome.request.fingerprint() != base.fingerprint()
        assert outcome.request.fingerprint() == base.replace(
            search_space="seq-conv1d"
        ).fingerprint()

    def test_space_partition_graph_override_is_honoured(self, engine):
        """A space may constrain cuts beyond the decoded skip edges; the
        whole pipeline (evaluator -> engine -> analyzer) must respect it."""
        from repro.nn.graph import PartitionGraph
        from repro.nn.search_space import LensSearchSpace

        class NoSplitSpace(LensSearchSpace):
            space_name = "lens-no-split"

            def partition_graph(self, architecture) -> PartitionGraph:
                # forbid every interior boundary: only All-Edge/All-Cloud
                n = len(architecture.layers)
                return PartitionGraph(num_layers=n, skip_edges=((-1, n - 1),))

        outcome = run_search(
            SearchRequest(strategy="random", **FAST),
            search_space=NoSplitSpace(),
            engine=engine,
        )
        for candidate in outcome.candidates:
            assert not candidate.best_latency_option.is_split
            assert not candidate.best_energy_option.is_split

    def test_graph_override_defeats_stale_cache_even_with_shared_name(self, engine):
        """The partition cache keys by the effective graph, so a space that
        overrides partition_graph() while *inheriting* space_name must not
        be served evaluations cached under the unconstrained graph."""
        from repro.nn.graph import PartitionGraph
        from repro.nn.search_space import LensSearchSpace

        class NoSplitSameName(LensSearchSpace):
            # deliberately inherits space_name == "lens-vgg"
            def partition_graph(self, architecture) -> PartitionGraph:
                n = len(architecture.layers)
                return PartitionGraph(num_layers=n, skip_edges=((-1, n - 1),))

        request = SearchRequest(strategy="random", **FAST)
        run_search(request, engine=engine)  # warm the cache under lens-vgg
        outcome = run_search(
            request, search_space=NoSplitSameName(), engine=engine
        )
        for candidate in outcome.candidates:
            assert not candidate.best_latency_option.is_split
            assert not candidate.best_energy_option.is_split
            assert candidate.extras["num_partition_points"] == 0

    def test_engine_partition_cache_is_keyed_by_space(self, engine):
        """Back-to-back runs in different spaces never share partition
        records; re-running the same space hits the cache."""
        request = SearchRequest(strategy="random", search_space="lens-vgg", **FAST)
        run_search(request, engine=engine)
        lens_entries = engine.cache_sizes()["partition_evaluations"]
        assert lens_entries > 0

        run_search(request.replace(search_space="resnet-v1"), engine=engine)
        assert engine.cache_sizes()["partition_evaluations"] > lens_entries

        before = engine.stats.snapshot()
        run_search(request, engine=engine)
        assert engine.stats.since(before)["partition_misses"] == 0


class TestCampaignsAcrossSpaces:
    def test_grid_expands_space_axis(self):
        spec = CampaignSpec(
            scenarios=("wifi-3mbps/jetson-tx2-gpu",),
            search_spaces=("lens-vgg", "resnet-v1", "seq-conv1d"),
            strategies=("random",),
            seeds=(0,),
        )
        assert spec.num_cells == 3
        spaces = [request.search_space for request in spec.requests()]
        assert spaces == ["lens-vgg", "resnet-v1", "seq-conv1d"]
        assert len({request.fingerprint() for request in spec.requests()}) == 3

    def test_spec_round_trips_and_validates(self):
        spec = CampaignSpec(
            scenarios=("wifi-3mbps/jetson-tx2-gpu",),
            search_spaces=("resnet-v1",),
        )
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone == spec
        spec.validate()

        legacy = spec.to_dict()
        del legacy["search_spaces"]
        assert CampaignSpec.from_dict(legacy).search_spaces == ("lens-vgg",)

        typo = CampaignSpec(
            scenarios=("wifi-3mbps/jetson-tx2-gpu",),
            search_spaces=("seq-conv2d",),
        )
        with pytest.raises(RegistryError, match="seq-conv1d"):
            typo.validate()

    def test_campaign_and_report_cover_every_space(self, tmp_path, engine):
        spec = CampaignSpec(
            scenarios=("wifi-3mbps/jetson-tx2-gpu",),
            search_spaces=("lens-vgg", "resnet-v1", "seq-conv1d"),
            strategies=("random",),
            seeds=(0,),
            num_initial=FAST["num_initial"],
            num_iterations=FAST["num_iterations"],
            candidate_pool_size=FAST["candidate_pool_size"],
            predictor_samples_per_type=FAST["predictor_samples_per_type"],
        )
        store = RunStore(tmp_path / "store")
        result = run_campaign(spec, store, engine=engine)
        assert len(result.executed) == 3

        assert store.summary()["search_spaces"] == [
            "lens-vgg", "resnet-v1", "seq-conv1d"
        ]
        summary = summarize_campaign(store.outcomes())
        assert summary.num_runs == 3
        for cell in summary.cells:
            assert cell.pareto_size >= 1

        # resume: a second pass over the same grid re-runs nothing
        again = run_campaign(spec, store, engine=engine)
        assert again.executed == ()
        assert len(again.skipped) == 3
