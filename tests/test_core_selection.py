"""Tests for model selection and deployment packaging."""

import pytest

from repro.core.results import CandidateEvaluation, SearchResult
from repro.core.selection import (
    DeploymentPackage,
    build_deployment_package,
    select_by_constraints,
    select_knee_point,
)
from repro.partition.deployment import DeploymentOption


def candidate(name, error, energy_mj, latency_ms, genotype=None):
    return CandidateEvaluation(
        genotype=tuple(genotype) if genotype is not None else (0,),
        architecture_name=name,
        error_percent=error,
        latency_s=latency_ms / 1e3,
        energy_j=energy_mj / 1e3,
        best_latency_option=DeploymentOption.all_edge(),
        best_energy_option=DeploymentOption.all_edge(),
        all_edge_latency_s=latency_ms / 1e3,
        all_edge_energy_j=energy_mj / 1e3,
    )


@pytest.fixture
def result():
    return SearchResult(
        [
            candidate("accurate", 18.0, 500.0, 60.0),
            candidate("balanced", 23.0, 220.0, 35.0),
            candidate("frugal", 32.0, 110.0, 18.0),
            candidate("dominated", 33.0, 400.0, 50.0),
        ],
        label="lens",
    )


class TestConstraintSelection:
    def test_selects_most_accurate_within_energy_budget(self, result):
        chosen = select_by_constraints(result, max_energy_mj=250.0)
        assert chosen.architecture_name == "balanced"

    def test_prefer_other_metric(self, result):
        chosen = select_by_constraints(result, max_error_percent=35.0, prefer="energy_j")
        assert chosen.architecture_name == "frugal"

    def test_multiple_constraints(self, result):
        chosen = select_by_constraints(
            result, max_error_percent=25.0, max_latency_ms=40.0
        )
        assert chosen.architecture_name == "balanced"

    def test_infeasible_constraints_raise(self, result):
        with pytest.raises(ValueError, match="no explored candidate"):
            select_by_constraints(result, max_error_percent=10.0)


class TestKneeSelection:
    def test_knee_prefers_compromise(self, result):
        chosen = select_knee_point(result, ("error_percent", "energy_j"))
        assert chosen.architecture_name == "balanced"

    def test_empty_result_raises(self):
        with pytest.raises(ValueError):
            select_knee_point(SearchResult([], label="empty"))

    def test_single_candidate_is_returned(self):
        single = SearchResult([candidate("only", 20.0, 100.0, 10.0)], label="one")
        assert select_knee_point(single).architecture_name == "only"


class TestDeploymentPackage:
    @pytest.fixture
    def package(self, search_space, gpu_oracle, wifi_channel):
        genotype = search_space.sample(3)
        chosen = candidate("picked", 22.0, 250.0, 40.0, genotype=genotype)
        return build_deployment_package(
            chosen, search_space, gpu_oracle, wifi_channel, metric="energy"
        )

    def test_package_contents(self, package, wifi_channel):
        assert isinstance(package, DeploymentPackage)
        assert package.metric == "energy"
        assert package.expected_uplink_mbps == wifi_channel.uplink_mbps
        assert len(package.options) >= 2
        assert len(package.dominance_intervals) >= 1
        assert package.architecture.input_shape == (3, 224, 224)

    def test_recommended_option_is_a_participating_option(self, package):
        recommended = package.recommended_option()
        assert recommended.option in [m.option for m in package.options]
        # At an extreme throughput the recommendation may differ but must
        # still come from the packaged options.
        extreme = package.recommended_option(80.0)
        assert extreme.option in [m.option for m in package.options]

    def test_recommendation_matches_design_expectation_best(self, package):
        """At the design-time throughput the recommended option minimises the metric."""
        recommended = package.recommended_option()
        values = [
            package._analysis.value(option, package.expected_uplink_mbps)
            for option in package.options
        ]
        assert package._analysis.value(
            recommended, package.expected_uplink_mbps
        ) == pytest.approx(min(values))

    def test_controller_can_be_instantiated_and_driven(self, package):
        controller = package.make_controller()
        chosen = controller.observe_and_select(5.0)
        assert chosen.option in [m.option for m in package.options]

    def test_to_dict_is_serialisable(self, package):
        from repro.utils.serialization import to_jsonable

        data = to_jsonable(package.to_dict())
        assert data["metric"] == "energy"
        assert len(data["options"]) == len(package.options)
