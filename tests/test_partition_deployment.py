"""Tests for deployment options and metrics."""

import pytest

from repro.partition.deployment import (
    ALL_CLOUD,
    ALL_EDGE,
    SPLIT,
    DeploymentMetrics,
    DeploymentOption,
)


class TestDeploymentOption:
    def test_constructors_and_labels(self):
        assert DeploymentOption.all_edge().label == "All-Edge"
        assert DeploymentOption.all_cloud().label == "All-Cloud"
        split = DeploymentOption.split_after(7, "pool5")
        assert split.label == "Split@pool5"
        assert split.is_split
        assert not DeploymentOption.all_edge().is_split

    def test_split_without_name_uses_index(self):
        assert DeploymentOption.split_after(3).label == "Split@layer3"

    def test_kind_validation(self):
        with pytest.raises(ValueError):
            DeploymentOption(kind="hybrid")
        with pytest.raises(ValueError):
            DeploymentOption(kind=SPLIT)
        with pytest.raises(ValueError):
            DeploymentOption(kind=ALL_EDGE, split_index=3)
        with pytest.raises(ValueError):
            DeploymentOption.split_after(-1)

    def test_equality_and_round_trip(self):
        option = DeploymentOption.split_after(5, "conv5")
        rebuilt = DeploymentOption.from_dict(option.to_dict())
        assert rebuilt == option
        assert DeploymentOption.all_edge() == DeploymentOption.all_edge()
        assert DeploymentOption.all_edge() != DeploymentOption.all_cloud()


class TestDeploymentMetrics:
    def test_to_dict_contains_components(self):
        metrics = DeploymentMetrics(
            option=DeploymentOption.split_after(2, "pool2"),
            latency_s=0.05,
            energy_j=0.2,
            edge_latency_s=0.03,
            edge_energy_j=0.15,
            comm_latency_s=0.02,
            comm_energy_j=0.05,
            transferred_bytes=1024.0,
        )
        data = metrics.to_dict()
        assert data["option"]["kind"] == SPLIT
        assert data["latency_s"] == 0.05
        assert data["transferred_bytes"] == 1024.0
        assert data["comm_energy_j"] == 0.05
