"""Tests for Pareto comparisons (Fig. 6), criteria counting (Fig. 7) and runtime studies (Fig. 8)."""

import numpy as np
import pytest

from repro.analysis.criteria import (
    Criterion,
    compare_criteria,
    paper_criteria,
)
from repro.analysis.pareto_metrics import compare_fronts, frontier_extremes
from repro.analysis.runtime_eval import run_runtime_study, select_runtime_options
from repro.core.results import CandidateEvaluation, SearchResult
from repro.partition.deployment import DeploymentOption
from repro.wireless.traces import generate_lte_trace


def candidate(name, error, energy_mj, latency_ms=50.0):
    return CandidateEvaluation(
        genotype=(0,),
        architecture_name=name,
        error_percent=error,
        latency_s=latency_ms / 1e3,
        energy_j=energy_mj / 1e3,
        best_latency_option=DeploymentOption.all_edge(),
        best_energy_option=DeploymentOption.all_edge(),
        all_edge_latency_s=latency_ms / 1e3,
        all_edge_energy_j=energy_mj / 1e3,
    )


@pytest.fixture
def lens_like_result():
    return SearchResult(
        [
            candidate("l1", 30.0, 120.0),
            candidate("l2", 24.0, 180.0),
            candidate("l3", 20.0, 260.0),
            candidate("l4", 35.0, 400.0),
        ],
        label="lens",
    )


@pytest.fixture
def traditional_like_result():
    return SearchResult(
        [
            candidate("t1", 28.0, 220.0),
            candidate("t2", 22.0, 300.0),
            candidate("t3", 19.0, 500.0),
            candidate("t4", 40.0, 600.0),
        ],
        label="traditional",
    )


class TestFrontComparison:
    def test_dominance_and_composition_fractions(self, lens_like_result, traditional_like_result):
        comparison = compare_fronts(lens_like_result, traditional_like_result)
        # LENS candidates dominate t1 (28,220) and t2 (22,300) but not t3 (19,500).
        assert comparison.a_dominates_b_fraction == pytest.approx(2 / 3)
        assert comparison.b_dominates_a_fraction == 0.0
        assert comparison.combined_fraction_a == pytest.approx(3 / 4)
        assert comparison.combined_fraction_b == pytest.approx(1 / 4)
        assert comparison.a_front_size == 3
        assert comparison.b_front_size == 3
        assert comparison.hypervolume_a > comparison.hypervolume_b

    def test_comparison_on_latency_metric_pair(self, lens_like_result, traditional_like_result):
        comparison = compare_fronts(
            lens_like_result, traditional_like_result, ("error_percent", "latency_s")
        )
        assert comparison.metrics == ("error_percent", "latency_s")
        assert 0.0 <= comparison.a_dominates_b_fraction <= 1.0

    def test_frontier_extremes(self, lens_like_result):
        extremes = frontier_extremes(lens_like_result)
        assert extremes["error_percent"] == 20.0
        assert extremes["energy_j"] == pytest.approx(0.120)

    def test_empty_result_extremes_are_nan(self):
        empty = SearchResult([], label="empty")
        extremes = frontier_extremes(empty)
        assert np.isnan(extremes["error_percent"])

    def test_to_dict(self, lens_like_result, traditional_like_result):
        data = compare_fronts(lens_like_result, traditional_like_result).to_dict()
        assert data["a_label"] == "lens"
        assert data["b_label"] == "traditional"


class TestCriteria:
    def test_paper_criteria_catalogue(self):
        criteria = paper_criteria()
        assert len(criteria) == 5
        assert criteria[0].label == "Err < 25"
        assert criteria[-1].max_error_percent == 25.0
        assert criteria[-1].max_energy_mj == 250.0

    def test_counting(self, lens_like_result):
        assert Criterion("Err < 25", max_error_percent=25.0).count(lens_like_result) == 2
        assert Criterion("Ergy < 200", max_energy_mj=200.0).count(lens_like_result) == 2
        joint = Criterion("joint", max_error_percent=25.0, max_energy_mj=200.0)
        assert joint.count(lens_like_result) == 1

    def test_compare_criteria_percent_change(self, lens_like_result, traditional_like_result):
        comparisons = compare_criteria(lens_like_result, traditional_like_result)
        by_label = {c.criterion.label: c for c in comparisons}
        energy_comparison = by_label["Ergy < 250"]
        assert energy_comparison.count_a == 2
        assert energy_comparison.count_b == 1
        assert energy_comparison.percent_change == pytest.approx(100.0)
        zero_case = by_label["Err < 20"]
        assert zero_case.count_a == 0
        assert zero_case.count_b == 1
        assert zero_case.percent_change == pytest.approx(-100.0)

    def test_percent_change_handles_zero_baseline(self, lens_like_result):
        empty = SearchResult([], label="none")
        comparisons = compare_criteria(lens_like_result, empty)
        assert comparisons[0].percent_change == float("inf")
        both_zero = compare_criteria(empty, empty)
        assert both_zero[0].percent_change == 0.0

    def test_criterion_serialisation(self):
        data = Criterion("x", max_energy_mj=100.0).to_dict()
        assert data["max_energy_mj"] == 100.0


class TestRuntimeStudy:
    def test_select_runtime_options_contains_best_and_companion(
        self, alexnet, gpu_oracle, wifi_channel
    ):
        options = select_runtime_options(
            alexnet, gpu_oracle, wifi_channel, metric="energy", include_all_edge=True
        )
        assert len(options) >= 2
        labels = [m.option.label for m in options]
        assert len(set(labels)) == len(labels)

    def test_run_runtime_study_dynamic_is_best(self, alexnet, gpu_oracle, wifi_channel):
        trace = generate_lte_trace(num_samples=25, mean_mbps=8.0, seed=3)
        study = run_runtime_study(
            "model A", alexnet, gpu_oracle, wifi_channel, trace, metric="energy"
        )
        dynamic = study.comparison.cumulative["dynamic"]
        for value in study.comparison.cumulative.values():
            assert dynamic <= value + 1e-12
        assert study.metric == "energy"
        assert study.model_label == "model A"
        assert len(study.options) >= 2

    def test_run_runtime_study_latency_with_all_cloud(self, alexnet, gpu_oracle, wifi_channel):
        trace = generate_lte_trace(num_samples=25, mean_mbps=20.0, seed=4)
        study = run_runtime_study(
            "model B",
            alexnet,
            gpu_oracle,
            wifi_channel,
            trace,
            metric="latency",
            include_all_cloud=True,
            include_all_edge=False,
        )
        assert study.comparison.metric == "latency"
        assert study.to_dict()["model_label"] == "model B"
