"""Golden trace-replay tests for the runtime/serving switch sequences.

``tests/data/golden_serving_traces.json`` (regenerate with
``tools/gen_golden_serving.py``) pins, for one wifi / lte / 3g replay each:

* the trace values themselves (drift in the trace generator fails here
  first, with a clear message);
* ``simulate_runtime``'s switch count and cumulative per-strategy metrics —
  the scalar path's Fig. 8 behaviour;
* the per-sample decision sequence of a memoryless tracker, which the
  vectorized :class:`repro.serving.ServingSession` must reproduce
  label-for-label, switch-for-switch.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.runtime import ThresholdAnalysis, simulate_runtime
from repro.partition.deployment import DeploymentMetrics, DeploymentOption
from repro.serving import FleetWorkload, ServingSession
from repro.wireless.power_models import RadioPowerModel
from repro.wireless.traces import ThroughputTrace, generate_lte_trace

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_serving_traces.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
CASES = {case["name"]: case for case in GOLDEN["cases"]}


def build_options():
    """The fixed option set the golden file was generated with."""
    edge = DeploymentMetrics(
        option=DeploymentOption.all_edge(),
        latency_s=0.04, energy_j=0.28,
        edge_latency_s=0.04, edge_energy_j=0.28,
        comm_latency_s=0.0, comm_energy_j=0.0, transferred_bytes=0.0,
    )
    split = DeploymentMetrics(
        option=DeploymentOption.split_after(7, "pool5"),
        latency_s=0.0, energy_j=0.0,
        edge_latency_s=0.015, edge_energy_j=0.16,
        comm_latency_s=0.0, comm_energy_j=0.0, transferred_bytes=36864.0,
    )
    cloud = DeploymentMetrics(
        option=DeploymentOption.all_cloud(),
        latency_s=0.0, energy_j=0.0,
        edge_latency_s=0.0, edge_energy_j=0.0,
        comm_latency_s=0.0, comm_energy_j=0.0, transferred_bytes=150528.0,
    )
    return [edge, split, cloud]


def analysis_for(case) -> ThresholdAnalysis:
    return ThresholdAnalysis(
        options=build_options(),
        power_model=RadioPowerModel.for_technology(case["technology"]),
        round_trip_s=case["round_trip_s"],
        metric=case["metric"],
    )


def trace_for(case) -> ThroughputTrace:
    return ThroughputTrace.from_values(
        case["uplinks_mbps"], name=f"golden-{case['name']}"
    )


@pytest.mark.parametrize("name", sorted(CASES))
class TestGoldenReplays:
    def test_trace_generator_still_produces_the_pinned_trace(self, name):
        """Regenerating from (seed, mean) must reproduce the stored values."""
        case = CASES[name]
        regenerated = generate_lte_trace(
            num_samples=len(case["uplinks_mbps"]),
            mean_mbps=case["trace_mean_mbps"],
            seed=case["trace_seed"],
        )
        np.testing.assert_allclose(
            regenerated.uplinks_mbps,
            np.asarray(case["uplinks_mbps"]),
            rtol=1e-12,
            err_msg=(
                "generate_lte_trace drifted from the pinned golden trace; "
                "if intentional, rerun tools/gen_golden_serving.py"
            ),
        )

    def test_simulate_runtime_matches_golden(self, name):
        """The scalar Fig. 8 replay: switch count + cumulative metrics."""
        case = CASES[name]
        comparison = simulate_runtime(analysis_for(case), trace_for(case))
        assert comparison.num_switches == case["num_switches"]
        assert set(comparison.cumulative) == set(case["cumulative"])
        for label, expected in case["cumulative"].items():
            assert comparison.cumulative[label] == pytest.approx(
                expected, rel=1e-12
            ), f"cumulative[{label!r}] drifted"

    def test_serving_session_reproduces_the_decision_sequence(self, name):
        """The vectorized replay must match the golden labels exactly."""
        case = CASES[name]
        analysis = analysis_for(case)
        workload = FleetWorkload.from_traces(
            [trace_for(case)], regions=[case["technology"]]
        )
        report = ServingSession(
            analysis, workload, record_decisions=True
        ).run()
        labels = [m.option.label for m in analysis.options]
        got = [labels[int(i)] for i in report.decision_log[:, 0]]
        assert got == case["decisions"]
        assert report.switches == case["num_switches"]
        assert report.decisions == len(case["decisions"])
        assert report.anomalies == 0

    def test_fleet_of_identical_clients_switches_identically(self, name):
        """N copies of the trace: every client follows the golden sequence."""
        case = CASES[name]
        analysis = analysis_for(case)
        num_clients = 5
        workload = FleetWorkload.from_traces(
            [trace_for(case)] * num_clients,
        )
        report = ServingSession(
            analysis, workload, record_decisions=True
        ).run()
        assert report.switches == num_clients * case["num_switches"]
        for client in range(1, num_clients):
            np.testing.assert_array_equal(
                report.decision_log[:, client], report.decision_log[:, 0]
            )


def test_golden_cases_cover_all_three_technologies():
    assert {case["technology"] for case in GOLDEN["cases"]} == {
        "wifi", "lte", "3g"
    }
    assert all(case["num_switches"] > 0 for case in GOLDEN["cases"])
