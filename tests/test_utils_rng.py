"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rng


def test_ensure_rng_from_int_is_deterministic():
    a = ensure_rng(42).integers(0, 1000, size=10)
    b = ensure_rng(42).integers(0, 1000, size=10)
    assert np.array_equal(a, b)


def test_ensure_rng_different_seeds_differ():
    a = ensure_rng(1).integers(0, 1_000_000, size=20)
    b = ensure_rng(2).integers(0, 1_000_000, size=20)
    assert not np.array_equal(a, b)


def test_ensure_rng_passthrough_generator():
    gen = np.random.default_rng(7)
    assert ensure_rng(gen) is gen


def test_ensure_rng_none_returns_generator():
    assert isinstance(ensure_rng(None), np.random.Generator)


def test_ensure_rng_rejects_negative_seed():
    with pytest.raises(ValueError):
        ensure_rng(-1)


def test_ensure_rng_rejects_bad_type():
    with pytest.raises(TypeError):
        ensure_rng("not-a-seed")


def test_spawn_rng_children_are_independent():
    parent = ensure_rng(0)
    children = spawn_rng(parent, count=3)
    assert len(children) == 3
    draws = [child.integers(0, 1_000_000, size=10) for child in children]
    assert not np.array_equal(draws[0], draws[1])
    assert not np.array_equal(draws[1], draws[2])


def test_spawn_rng_rejects_zero_count():
    with pytest.raises(ValueError):
        spawn_rng(ensure_rng(0), count=0)
