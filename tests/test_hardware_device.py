"""Tests for repro.hardware.device."""

import pytest

from repro.hardware.device import (
    BUILTIN_DEVICES,
    DeviceProfile,
    cloud_server,
    device_by_name,
    jetson_tx2_cpu,
    jetson_tx2_gpu,
)


def test_builtin_registry_contains_expected_devices():
    assert set(BUILTIN_DEVICES) == {"jetson-tx2-gpu", "jetson-tx2-cpu", "cloud-server"}


def test_device_by_name_and_unknown():
    assert device_by_name("jetson-tx2-gpu").name == "jetson-tx2-gpu"
    with pytest.raises(KeyError):
        device_by_name("raspberry-pi")


def test_gpu_is_faster_than_cpu():
    gpu, cpu = jetson_tx2_gpu(), jetson_tx2_cpu()
    assert gpu.compute_rate("conv") > cpu.compute_rate("conv")
    assert gpu.memory_bandwidth_bps > cpu.memory_bandwidth_bps


def test_cloud_is_much_faster_than_edge():
    cloud, gpu = cloud_server(), jetson_tx2_gpu()
    assert cloud.compute_rate("conv") > 10 * gpu.compute_rate("conv")
    assert cloud.kind == "cloud"
    assert not cloud.is_edge


def test_compute_rate_falls_back_to_default():
    device = DeviceProfile(name="x", compute_rate_flops={"default": 1e9, "conv": 2e9})
    assert device.compute_rate("conv") == 2e9
    assert device.compute_rate("fc") == 1e9


def test_requires_default_rate():
    with pytest.raises(ValueError, match="default"):
        DeviceProfile(name="x", compute_rate_flops={"conv": 1e9})


def test_rejects_invalid_kind_and_rates():
    with pytest.raises(ValueError):
        DeviceProfile(name="x", kind="fog")
    with pytest.raises(ValueError):
        DeviceProfile(name="x", compute_rate_flops={"default": -1.0})


def test_to_dict_contains_all_fields():
    data = jetson_tx2_gpu().to_dict()
    assert data["name"] == "jetson-tx2-gpu"
    assert data["kind"] == "edge"
    assert "conv" in data["compute_rate_flops"]
    assert data["busy_power_w"] > 0
