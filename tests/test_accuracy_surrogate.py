"""Tests for the analytic accuracy surrogate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accuracy.surrogate import AccuracySurrogate
from repro.nn.search_space import LensSearchSpace
from repro.nn.vgg import build_vgg_like


def vgg_arch(block_filters, block_depths, fc_units, name):
    return build_vgg_like(
        name=name,
        block_filters=block_filters,
        block_depths=block_depths,
        fc_units=fc_units,
        num_classes=10,
        input_shape=(3, 32, 32),
    )


class TestSurrogateTrends:
    def test_output_within_configured_bounds(self, surrogate, search_space, rng):
        for _ in range(20):
            arch = search_space.decode_for_accuracy(search_space.sample(rng))
            error = surrogate.error_percent(arch)
            assert surrogate.floor <= error <= surrogate.ceiling

    def test_deterministic_per_architecture(self, surrogate, search_space):
        arch = search_space.decode_for_accuracy(search_space.sample(7))
        assert surrogate.error_percent(arch) == surrogate.error_percent(arch)

    def test_deeper_networks_have_lower_error(self):
        surrogate = AccuracySurrogate(noise_std=0.0)
        shallow = vgg_arch((64,) * 5, (1,) * 5, (1024,), "shallow")
        deep = vgg_arch((64,) * 5, (3,) * 5, (1024,), "deep")
        assert surrogate.error_percent(deep) < surrogate.error_percent(shallow)

    def test_wider_networks_have_lower_error(self):
        surrogate = AccuracySurrogate(noise_std=0.0)
        thin = vgg_arch((24,) * 5, (2,) * 5, (1024,), "thin")
        wide = vgg_arch((128,) * 5, (2,) * 5, (1024,), "wide")
        assert surrogate.error_percent(wide) < surrogate.error_percent(thin)

    def test_larger_fc_layers_help(self):
        surrogate = AccuracySurrogate(noise_std=0.0)
        small_fc = vgg_arch((64,) * 5, (2,) * 5, (256,), "small-fc")
        large_fc = vgg_arch((64,) * 5, (2,) * 5, (4096,), "large-fc")
        assert surrogate.error_percent(large_fc) <= surrogate.error_percent(small_fc)

    def test_different_salt_changes_noise_only_slightly(self):
        arch = vgg_arch((64,) * 5, (2,) * 5, (1024,), "salted")
        a = AccuracySurrogate(seed_salt="run-a").error_percent(arch)
        b = AccuracySurrogate(seed_salt="run-b").error_percent(arch)
        assert a != b
        assert abs(a - b) < 10.0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AccuracySurrogate(floor=50.0, ceiling=40.0)
        with pytest.raises(ValueError):
            AccuracySurrogate(noise_std=-1.0)

    def test_search_space_errors_span_a_useful_range(self, search_space):
        """Errors over the space must straddle the Fig. 7 criteria (20/25 %)."""
        surrogate = AccuracySurrogate()
        errors = [
            surrogate.error_percent(search_space.decode_for_accuracy(search_space.sample(seed)))
            for seed in range(40)
        ]
        assert min(errors) < 25.0
        assert max(errors) > 25.0


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_error_is_finite_and_bounded_for_any_candidate(seed):
    space = LensSearchSpace()
    surrogate = AccuracySurrogate()
    arch = space.decode_for_accuracy(space.sample(seed))
    error = surrogate.error_percent(arch)
    assert np.isfinite(error)
    assert 0.0 < error < 100.0
