"""Fault injection and service metrics for the serving layer + ``repro serve``.

Degradation contract: stalled clients, zero/negative/infinite measurements
and traces that end mid-replay must never raise — the fleet holds the last
decision, tallies the anomaly, and the report says exactly how much of the
replay was degraded.  The CLI contract: an empty Pareto set exits 1, an
unknown scenario exits 2.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.reporting import ExperimentReport
from repro.cli import main
from repro.core.runtime import ThresholdAnalysis
from repro.partition.deployment import DeploymentMetrics, DeploymentOption
from repro.serving import (
    FleetController,
    FleetTracker,
    FleetWorkload,
    ServingSession,
)
from repro.wireless.power_models import RadioPowerModel
from repro.wireless.traces import ThroughputTrace


def build_analysis(metric="energy"):
    edge = DeploymentMetrics(
        option=DeploymentOption.all_edge(),
        latency_s=0.04, energy_j=0.28,
        edge_latency_s=0.04, edge_energy_j=0.28,
        comm_latency_s=0.0, comm_energy_j=0.0, transferred_bytes=0.0,
    )
    split = DeploymentMetrics(
        option=DeploymentOption.split_after(7, "pool5"),
        latency_s=0.0, energy_j=0.0,
        edge_latency_s=0.015, edge_energy_j=0.16,
        comm_latency_s=0.0, comm_energy_j=0.0, transferred_bytes=36864.0,
    )
    return ThresholdAnalysis(
        options=[edge, split],
        power_model=RadioPowerModel.for_technology("wifi"),
        round_trip_s=0.01,
        metric=metric,
    )


ANALYSIS = build_analysis()


class TestStalledClients:
    def test_fully_silent_client_is_reported_not_raised(self):
        uplinks = np.array([[3.0, np.nan], [4.0, np.nan], [2.0, np.nan]])
        workload = FleetWorkload(uplinks, regions=("a", "b"))
        report = ServingSession(ANALYSIS, workload,
                                record_decisions=True).run()
        assert report.silent_clients == 1
        assert report.held_ticks == 3
        # The silent client never gets a decision; the healthy one always does.
        assert (report.decision_log[:, 1] == -1).all()
        assert (report.decision_log[:, 0] >= 0).all()
        assert report.decisions == 3

    def test_intermittent_stall_holds_last_decision(self):
        uplinks = np.array([[3.0], [np.nan], [np.nan], [5.0]])
        workload = FleetWorkload(uplinks, regions=("a",))
        report = ServingSession(ANALYSIS, workload,
                                record_decisions=True).run()
        first = report.decision_log[0, 0]
        assert first >= 0
        # Stalled ticks repeat the previous decision: the estimate persists,
        # so the controller re-decides from it (held_ticks only counts
        # clients with no estimate at all; the gap shows in idle ticks).
        assert report.decision_log[1, 0] == first
        assert report.decision_log[2, 0] == first
        assert report.held_ticks == 0
        assert report.idle_client_ticks == 2
        assert report.silent_clients == 0
        # Held ticks still produce a decision (the held one).
        assert report.decisions == 4


class TestAnomalousMeasurements:
    @pytest.mark.parametrize("bad", [0.0, -3.0, np.inf, -np.inf])
    def test_bad_measurement_counts_anomaly_and_holds(self, bad):
        tracker = FleetTracker(2)
        controller = FleetController(ANALYSIS, 2)
        controller.decide(tracker.observe(np.array([3.0, 3.0])))
        before = tracker.estimates_mbps
        decision_before = controller.last_option_indices.copy()
        estimates = tracker.observe(np.array([bad, 4.0]))
        choice = controller.decide(estimates)
        # Client 0's estimate and decision are untouched; the anomaly is
        # tallied.  Client 1 proceeds normally.
        assert estimates[0] == before[0]
        assert choice[0] == decision_before[0]
        assert tracker.anomalies.tolist() == [1, 0]
        assert tracker.num_observations.tolist() == [1, 2]

    def test_session_reports_anomalies_without_serving_them(self):
        uplinks = np.array([[3.0, 3.0], [0.0, -1.0], [4.0, np.inf]])
        workload = FleetWorkload(uplinks, regions=("a", "b"))
        report = ServingSession(ANALYSIS, workload, latency_sla_s=10.0).run()
        assert report.anomalies == 3
        # Anomalous ticks issue no inference: 6 client-ticks, 3 anomalous.
        assert report.served == 3
        assert report.sla_violations == 0

    def test_nan_is_idle_not_anomalous(self):
        tracker = FleetTracker(1)
        tracker.observe(np.array([np.nan]))
        assert tracker.anomalies[0] == 0
        assert tracker.num_observations[0] == 0


class TestExhaustedTraces:
    def test_shorter_trace_exhausts_and_holds(self):
        long = ThroughputTrace.from_values([3.0, 4.0, 2.0, 5.0], name="long")
        short = ThroughputTrace.from_values([3.0, 4.0], name="short")
        workload = FleetWorkload.from_traces([long, short])
        assert workload.idle_client_ticks == 2
        report = ServingSession(ANALYSIS, workload,
                                record_decisions=True).run()
        assert report.exhausted_clients == 1
        assert report.silent_clients == 0
        # After exhaustion the short client's decision is frozen.
        last_live = report.decision_log[1, 1]
        assert (report.decision_log[2:, 1] == last_live).all()

    def test_exhausted_clients_stop_being_served(self):
        long = ThroughputTrace.from_values([3.0] * 4, name="long")
        short = ThroughputTrace.from_values([3.0], name="short")
        workload = FleetWorkload.from_traces([long, short])
        report = ServingSession(ANALYSIS, workload, latency_sla_s=10.0).run()
        assert report.served == 5  # 4 + 1 live client-ticks


class TestServiceMetrics:
    def test_sla_accounting_tight_and_generous(self):
        uplinks = np.full((3, 4), 3.0)
        workload = FleetWorkload(uplinks, regions=("a",) * 4)
        tight = ServingSession(ANALYSIS, workload,
                               latency_sla_s=1e-6).run()
        generous = ServingSession(ANALYSIS, workload,
                                  latency_sla_s=100.0).run()
        assert tight.served == 12
        assert tight.sla_violations == 12
        assert tight.sla_violation_rate == 1.0
        assert generous.sla_violations == 0
        assert generous.sla_violation_rate == 0.0

    def test_no_sla_means_no_violation_accounting(self):
        workload = FleetWorkload(np.full((2, 2), 3.0), regions=("a", "b"))
        report = ServingSession(ANALYSIS, workload).run()
        assert report.sla_latency_s is None
        assert report.sla_violations == 0
        assert report.sla_violation_rate == 0.0

    def test_per_region_breakdown_sums_to_totals(self):
        workload = FleetWorkload.synthesize(
            30, 12, stall_probability=0.1, seed=3
        )
        report = ServingSession(ANALYSIS, workload,
                                latency_sla_s=0.5).run()
        assert sum(r["clients"] for r in report.per_region.values()) == 30
        assert sum(
            r["decisions"] for r in report.per_region.values()
        ) == report.decisions
        assert sum(
            r["switches"] for r in report.per_region.values()
        ) == report.switches
        assert sum(
            r["served"] for r in report.per_region.values()
        ) == report.served
        assert sum(
            r["violations"] for r in report.per_region.values()
        ) == report.sla_violations

    def test_throughput_and_latency_metrics_are_sane(self):
        workload = FleetWorkload.synthesize(50, 8, seed=1)
        report = ServingSession(ANALYSIS, workload).run()
        assert report.decisions_per_s > 0
        assert report.us_per_decision > 0
        assert report.tick_p99_ms >= report.tick_p50_ms >= 0
        payload = report.to_dict()
        assert payload["num_clients"] == 50
        assert json.dumps(payload)  # JSON-serializable end to end


class TestValidation:
    def test_tracker_rejects_bad_shapes_and_coefficients(self):
        with pytest.raises(ValueError):
            FleetTracker(0)
        with pytest.raises(ValueError):
            FleetTracker(2, smoothing=[0.5, 1.5])
        with pytest.raises(ValueError):
            FleetTracker(2, initial_mbps=[-1.0, 2.0])
        tracker = FleetTracker(2)
        with pytest.raises(ValueError):
            tracker.observe(np.array([1.0, 2.0, 3.0]))

    def test_workload_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            FleetWorkload(np.zeros((0, 2)), regions=("a", "b"))
        with pytest.raises(ValueError):
            FleetWorkload(np.zeros((2, 2)), regions=("a",))
        with pytest.raises(ValueError):
            FleetWorkload.from_traces([])
        with pytest.raises(ValueError):
            FleetWorkload.synthesize(0, 5)
        with pytest.raises(ValueError):
            FleetWorkload.synthesize(5, 5, stall_probability=1.5)
        with pytest.raises(ValueError):
            FleetWorkload.synthesize(5, 5, regions=[])

    def test_session_rejects_bad_method_and_sla(self):
        workload = FleetWorkload(np.full((1, 1), 3.0), regions=("a",))
        with pytest.raises(ValueError):
            ServingSession(ANALYSIS, workload, method="magic")
        with pytest.raises(ValueError):
            ServingSession(ANALYSIS, workload, latency_sla_s=0.0)

    def test_controller_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            FleetController(ANALYSIS, 0)
        with pytest.raises(ValueError):
            FleetController(ANALYSIS, 2, method="nearest")
        controller = FleetController(ANALYSIS, 2)
        with pytest.raises(ValueError):
            controller.decide(np.array([1.0]))


class TestReportingIntegration:
    def test_experiment_report_renders_fleet_summary(self):
        workload = FleetWorkload.synthesize(
            12, 6, stall_probability=0.2, seed=5
        )
        serving = ServingSession(ANALYSIS, workload,
                                 latency_sla_s=0.5).run()
        report = ExperimentReport(title="Serving")
        report.add_serving_report(serving)
        markdown = report.render_markdown()
        assert "Serving session" in markdown
        assert "decisions/s" in markdown
        assert "Per-region breakdown" in markdown
        for label, stats in serving.per_region.items():
            assert label in markdown
            assert str(stats["clients"]) in markdown
        if serving.anomalies or serving.silent_clients:
            assert "Degraded inputs absorbed" in markdown


# ---------------------------------------------------------------------- CLI

@pytest.fixture(scope="module")
def serve_store(tmp_path_factory):
    """A tiny campaign store (2 evaluations) for the serve CLI tests."""
    store_dir = tmp_path_factory.mktemp("serve") / "store"
    code = main([
        "campaign",
        "--scenario", "wifi-3mbps/jetson-tx2-gpu",
        "--strategy", "random",
        "--num-initial", "2", "--num-iterations", "0",
        "--pool-size", "8", "--predictor-samples", "40",
        "--store", str(store_dir), "--quiet",
    ])
    assert code == 0
    return store_dir


class TestServeCli:
    def test_serve_replays_a_stored_front(self, serve_store, capsys):
        code = main([
            "serve", "--store", str(serve_store),
            "--clients", "60", "--ticks", "12",
            "--sla-ms", "400", "--stall-probability", "0.1",
            "--seed", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving " in out
        assert "decisions/s" in out
        assert "per region:" in out

    def test_serve_json_payload_is_complete(self, serve_store, tmp_path,
                                            capsys):
        out_file = tmp_path / "serving.json"
        code = main([
            "serve", "--store", str(serve_store),
            "--clients", "20", "--ticks", "6",
            "--format", "json", "--out", str(out_file),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "wifi-3mbps/jetson-tx2-gpu"
        assert payload["num_clients"] == 20
        assert payload["decisions"] > 0
        assert "switching_thresholds_mbps" in payload
        assert json.loads(out_file.read_text(encoding="utf-8")) == payload

    def test_serve_markdown_format(self, serve_store, capsys):
        code = main([
            "serve", "--store", str(serve_store),
            "--clients", "10", "--ticks", "4", "--format", "markdown",
        ])
        assert code == 0
        assert "## Serving session" in capsys.readouterr().out

    def test_empty_store_exits_1(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["serve", "--store", str(empty)]) == 1
        assert "no Pareto" in capsys.readouterr().err

    def test_unknown_scenario_exits_2(self, serve_store, capsys):
        code = main([
            "serve", "--store", str(serve_store),
            "--scenario", "no-such-scenario",
        ])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_known_but_absent_scenario_exits_1(self, serve_store, capsys):
        code = main([
            "serve", "--store", str(serve_store),
            "--scenario", "lte-3mbps/jetson-tx2-gpu",
        ])
        assert code == 1

    def test_unknown_region_exits_2(self, serve_store, capsys):
        code = main([
            "serve", "--store", str(serve_store),
            "--regions", "Atlantis",
        ])
        assert code == 2
