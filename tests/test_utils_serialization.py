"""Tests for repro.utils.serialization."""

import numpy as np
import pytest

from repro.utils.serialization import dump_json, format_table, load_json, to_jsonable


def test_to_jsonable_handles_numpy_scalars():
    assert to_jsonable(np.int64(3)) == 3
    assert to_jsonable(np.float64(1.5)) == 1.5
    assert to_jsonable(np.bool_(True)) is True


def test_to_jsonable_handles_arrays_and_containers():
    value = {"a": np.arange(3), "b": (1, 2), "c": {np.float32(1.0)}}
    result = to_jsonable(value)
    assert result["a"] == [0, 1, 2]
    assert result["b"] == [1, 2]
    assert result["c"] == [1.0]


def test_to_jsonable_uses_to_dict():
    class Thing:
        def to_dict(self):
            return {"x": np.int32(7)}

    assert to_jsonable(Thing()) == {"x": 7}


def test_to_jsonable_rejects_unknown_types():
    with pytest.raises(TypeError):
        to_jsonable(object())


def test_dump_and_load_round_trip(tmp_path):
    payload = {"values": [1, 2.5, "x"], "nested": {"flag": True}}
    path = dump_json(payload, tmp_path / "out" / "data.json")
    assert path.exists()
    assert load_json(path) == payload


def test_format_table_alignment_and_precision():
    table = format_table(
        rows=[["alexnet", 39.94321, 1], ["vgg16", 120.5, 22]],
        headers=["model", "latency_ms", "splits"],
        precision=2,
    )
    lines = table.splitlines()
    assert lines[0].startswith("model")
    assert "39.94" in table
    assert "120.50" in table
    assert len(lines) == 4  # header, separator, two rows


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(rows=[[1, 2], [1]], headers=["a", "b"])
