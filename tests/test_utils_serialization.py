"""Tests for repro.utils.serialization."""

import json

import numpy as np
import pytest

from repro.api.envelopes import SearchOutcome, SearchRequest
from repro.api.scenario import scenario_by_name
from repro.core.results import CandidateEvaluation
from repro.partition.deployment import DeploymentOption
from repro.utils.serialization import dump_json, format_table, load_json, to_jsonable


def test_to_jsonable_handles_numpy_scalars():
    assert to_jsonable(np.int64(3)) == 3
    assert to_jsonable(np.float64(1.5)) == 1.5
    assert to_jsonable(np.bool_(True)) is True


def test_to_jsonable_handles_arrays_and_containers():
    value = {"a": np.arange(3), "b": (1, 2), "c": {np.float32(1.0)}}
    result = to_jsonable(value)
    assert result["a"] == [0, 1, 2]
    assert result["b"] == [1, 2]
    assert result["c"] == [1.0]


def test_to_jsonable_uses_to_dict():
    class Thing:
        def to_dict(self):
            return {"x": np.int32(7)}

    assert to_jsonable(Thing()) == {"x": 7}


def test_to_jsonable_rejects_unknown_types():
    with pytest.raises(TypeError):
        to_jsonable(object())


def test_dump_and_load_round_trip(tmp_path):
    payload = {"values": [1, 2.5, "x"], "nested": {"flag": True}}
    path = dump_json(payload, tmp_path / "out" / "data.json")
    assert path.exists()
    assert load_json(path) == payload


def test_format_table_alignment_and_precision():
    table = format_table(
        rows=[["alexnet", 39.94321, 1], ["vgg16", 120.5, 22]],
        headers=["model", "latency_ms", "splits"],
        precision=2,
    )
    lines = table.splitlines()
    assert lines[0].startswith("model")
    assert "39.94" in table
    assert "120.50" in table
    assert len(lines) == 4  # header, separator, two rows


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(rows=[[1, 2], [1]], headers=["a", "b"])


# ---------------------------------------------------------------------- envelope round trips

def _sample_candidate() -> CandidateEvaluation:
    return CandidateEvaluation(
        genotype=(np.int64(1), 0, 2, 1, 0, 1),
        architecture_name="lens-000123",
        error_percent=np.float64(17.25),
        latency_s=0.042,
        energy_j=0.128,
        best_latency_option=DeploymentOption.split_after(4, "pool2"),
        best_energy_option=DeploymentOption.all_edge(),
        all_edge_latency_s=0.051,
        all_edge_energy_j=0.128,
        iteration=7,
        phase="bo",
        extras={"total_macs": np.int64(123456), "num_partition_points": 3},
    )


def test_candidate_evaluation_round_trips_through_json():
    candidate = _sample_candidate()
    payload = json.loads(json.dumps(to_jsonable(candidate)))
    restored = CandidateEvaluation.from_dict(payload)
    assert restored.genotype == tuple(int(v) for v in candidate.genotype)
    assert restored.architecture_name == candidate.architecture_name
    assert restored.error_percent == pytest.approx(candidate.error_percent)
    assert restored.best_latency_option == candidate.best_latency_option
    assert restored.best_energy_option == candidate.best_energy_option
    assert restored.phase == "bo" and restored.iteration == 7
    assert restored.extras["total_macs"] == 123456


def test_search_request_round_trips_through_json():
    request = SearchRequest(
        scenario="lte-3mbps/jetson-tx2-cpu",
        strategy="traditional",
        num_initial=6,
        num_iterations=14,
        candidate_pool_size=48,
        acquisition="ucb",
        seed=11,
        tags={"experiment": "ablation-7"},
    )
    payload = json.loads(json.dumps(to_jsonable(request)))
    assert SearchRequest.from_dict(payload) == request


def test_search_request_rejects_future_schema_versions():
    data = SearchRequest().to_dict()
    data["schema_version"] = 999
    with pytest.raises(ValueError, match="schema_version=999"):
        SearchRequest.from_dict(data)


def test_search_outcome_round_trips_through_json():
    outcome = SearchOutcome(
        request=SearchRequest(num_initial=2, num_iterations=0),
        scenario=scenario_by_name("wifi-3mbps/jetson-tx2-gpu"),
        label="lens",
        candidates=(_sample_candidate(),),
        wall_time_s=1.5,
        engine_stats={"layer_hits": np.int64(10), "layer_misses": 2},
    )
    payload = json.loads(json.dumps(to_jsonable(outcome)))
    restored = SearchOutcome.from_dict(payload)
    assert restored.label == "lens"
    assert restored.scenario == outcome.scenario
    assert restored.request == outcome.request
    assert len(restored) == 1
    assert restored.engine_stats == {"layer_hits": 10, "layer_misses": 2}
    assert restored.wall_time_s == pytest.approx(1.5)
