"""Tests for GP kernels and exact Gaussian-process regression."""

import numpy as np
import pytest

from repro.optim.gp import GaussianProcess
from repro.optim.kernels import (
    Kernel,
    Matern52Kernel,
    RBFKernel,
    is_scalar_lengthscale,
    kernel_by_name,
    pairwise_distances,
    pairwise_scaled_distances,
    supports_distance_reuse,
)


class TestKernels:
    def test_pairwise_distances_match_numpy(self, rng):
        X1 = rng.uniform(size=(5, 3))
        X2 = rng.uniform(size=(7, 3))
        distances = pairwise_scaled_distances(X1, X2, 1.0)
        expected = np.linalg.norm(X1[:, None, :] - X2[None, :, :], axis=-1)
        assert np.allclose(distances, expected)

    def test_lengthscale_vector_support(self, rng):
        X = rng.uniform(size=(4, 2))
        iso = pairwise_scaled_distances(X, X, 0.5)
        aniso = pairwise_scaled_distances(X, X, np.array([0.5, 0.5]))
        assert np.allclose(iso, aniso)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pairwise_scaled_distances(np.zeros((2, 3)), np.zeros((2, 4)), 1.0)
        with pytest.raises(ValueError):
            pairwise_scaled_distances(np.zeros((2, 3)), np.zeros((2, 3)), np.ones(5))
        with pytest.raises(ValueError):
            pairwise_scaled_distances(np.zeros((2, 3)), np.zeros((2, 3)), 0.0)

    @pytest.mark.parametrize("kernel_cls", [RBFKernel, Matern52Kernel])
    def test_kernel_properties(self, kernel_cls, rng):
        kernel = kernel_cls(lengthscale=0.4, variance=2.0)
        X = rng.uniform(size=(6, 3))
        K = kernel(X, X)
        # Symmetric, diagonal equals the variance, PSD (after jitter).
        assert np.allclose(K, K.T)
        assert np.allclose(np.diag(K), 2.0)
        eigenvalues = np.linalg.eigvalsh(K + 1e-10 * np.eye(6))
        assert np.all(eigenvalues > -1e-8)
        assert np.allclose(kernel.diag(X), 2.0)

    def test_kernel_decays_with_distance(self):
        kernel = RBFKernel(lengthscale=0.3)
        near = kernel(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = kernel(np.array([[0.0]]), np.array([[1.0]]))[0, 0]
        assert near > far

    def test_with_params_creates_modified_copy(self):
        kernel = Matern52Kernel(lengthscale=0.3)
        other = kernel.with_params(lengthscale=0.9)
        assert other.lengthscale == 0.9
        assert kernel.lengthscale == 0.3

    def test_kernel_by_name(self):
        assert isinstance(kernel_by_name("rbf"), RBFKernel)
        assert isinstance(kernel_by_name("matern52", lengthscale=0.2), Matern52Kernel)
        with pytest.raises(ValueError):
            kernel_by_name("linear")

    def test_variance_must_be_positive(self):
        with pytest.raises(ValueError):
            RBFKernel(variance=0.0)

    @pytest.mark.parametrize("kernel_cls", [RBFKernel, Matern52Kernel])
    def test_from_scaled_distances_matches_direct_evaluation(self, kernel_cls, rng):
        """One unscaled distance pass + an elementwise rescale ≡ the full kernel."""
        kernel = kernel_cls(lengthscale=0.45, variance=1.5)
        X1 = rng.uniform(size=(6, 4))
        X2 = rng.uniform(size=(9, 4))
        r0 = pairwise_distances(X1, X2)
        assert np.allclose(
            kernel.from_scaled_distances(r0 / 0.45), kernel(X1, X2), atol=1e-12
        )

    def test_pairwise_distances_is_unscaled(self, rng):
        X = rng.uniform(size=(5, 3))
        assert np.allclose(pairwise_distances(X, X), pairwise_scaled_distances(X, X, 1.0))

    def test_is_scalar_lengthscale(self):
        assert is_scalar_lengthscale(0.3)
        assert not is_scalar_lengthscale(np.array([0.3, 0.5]))

    def test_supports_distance_reuse(self):
        assert supports_distance_reuse(Matern52Kernel(lengthscale=0.3))
        assert not supports_distance_reuse(Matern52Kernel(lengthscale=np.array([0.3, 0.5])))

        class Minimal(Kernel):
            lengthscale = 0.5

        assert not supports_distance_reuse(Minimal())


class TestGaussianProcess:
    def _train_data(self, rng, n=30):
        X = rng.uniform(size=(n, 2))
        y = np.sin(3 * X[:, 0]) + 0.5 * X[:, 1] ** 2
        return X, y

    def test_interpolates_training_points_with_low_noise(self, rng):
        X, y = self._train_data(rng)
        gp = GaussianProcess(noise_variance=1e-8).fit(X, y)
        mean, std = gp.predict(X)
        assert np.allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.05)

    def test_uncertainty_grows_away_from_data(self, rng):
        X, y = self._train_data(rng)
        gp = GaussianProcess(noise_variance=1e-6).fit(X, y)
        _, std_near = gp.predict(X[:1])
        _, std_far = gp.predict(np.array([[5.0, 5.0]]))
        assert std_far[0] > std_near[0] * 5

    def test_posterior_samples_have_correct_shape_and_spread(self, rng):
        X, y = self._train_data(rng)
        gp = GaussianProcess(noise_variance=1e-6).fit(X, y)
        Xs = rng.uniform(size=(10, 2))
        samples = gp.sample_posterior(Xs, rng=rng, num_samples=5)
        assert samples.shape == (5, 10)
        mean, std = gp.predict(Xs)
        # Samples concentrate around the posterior mean.
        assert np.all(np.abs(samples.mean(axis=0) - mean) < 5 * (std + 0.1))

    def test_prediction_requires_fit(self):
        gp = GaussianProcess()
        with pytest.raises(RuntimeError):
            gp.predict(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            gp.log_marginal_likelihood()

    def test_fit_validates_shapes(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(4))

    def test_normalization_handles_large_scale_targets(self, rng):
        X = rng.uniform(size=(20, 1))
        y = 1e6 * X[:, 0] + 5e5
        gp = GaussianProcess(noise_variance=1e-6).fit(X, y)
        mean, _ = gp.predict(X)
        assert np.allclose(mean, y, rtol=1e-3)

    def test_lengthscale_optimisation_improves_likelihood(self, rng):
        X, y = self._train_data(rng, n=40)
        gp = GaussianProcess(kernel=Matern52Kernel(lengthscale=0.01), noise_variance=1e-4)
        gp.fit(X, y)
        before = gp.log_marginal_likelihood()
        best = gp.optimize_lengthscale(candidates=(0.01, 0.1, 0.3, 0.8))
        after = gp.log_marginal_likelihood()
        assert after >= before
        assert best in (0.01, 0.1, 0.3, 0.8)

    def test_lengthscale_optimisation_factorizes_once_per_candidate(self, rng, monkeypatch):
        """The winning grid iteration's fit is kept — no redundant final refit."""
        X, y = self._train_data(rng, n=25)
        gp = GaussianProcess().fit(X, y)
        calls = []
        original = np.linalg.cholesky
        monkeypatch.setattr(np.linalg, "cholesky", lambda a: calls.append(1) or original(a))
        candidates = (0.1, 0.3, 0.8, 2.0)
        gp.optimize_lengthscale(candidates=candidates)
        assert len(calls) == len(candidates)

    def test_lengthscale_optimisation_leaves_best_fit_installed(self, rng):
        """The kept factor equals what a fresh fit at the winner produces."""
        X, y = self._train_data(rng, n=30)
        gp = GaussianProcess().fit(X, y)
        best = gp.optimize_lengthscale(candidates=(0.1, 0.3, 0.8))
        exact = GaussianProcess(kernel=Matern52Kernel(lengthscale=best)).fit(X, y)
        mean_a, std_a = gp.predict(X[:5])
        mean_b, std_b = exact.predict(X[:5])
        assert np.allclose(mean_a, mean_b, atol=1e-10)
        assert np.allclose(std_a, std_b, atol=1e-10)

    def test_lengthscale_optimisation_vector_lengthscale_fallback(self, rng):
        """Anisotropic kernels can't share distances but the grid still works."""
        X, y = self._train_data(rng, n=20)
        gp = GaussianProcess(kernel=Matern52Kernel(lengthscale=np.array([0.3, 0.3])))
        gp.fit(X, y)
        best = gp.optimize_lengthscale(candidates=(0.2, 0.6))
        assert best in (0.2, 0.6)

    def test_lengthscale_optimisation_custom_kernel_without_distance_hook(self, rng):
        """Kernels implementing only the pre-existing __call__ contract still work."""

        class ExpKernel(Kernel):
            def __init__(self, lengthscale=0.3, variance=1.0):
                self.lengthscale = lengthscale
                self.variance = float(variance)

            def __call__(self, X1, X2):
                r = pairwise_scaled_distances(X1, X2, self.lengthscale)
                return self.variance * np.exp(-r)

            def get_params(self):
                return {"lengthscale": self.lengthscale, "variance": self.variance}

        X, y = self._train_data(rng, n=20)
        gp = GaussianProcess(kernel=ExpKernel(lengthscale=0.3)).fit(X, y)
        best = gp.optimize_lengthscale(candidates=(0.2, 0.6))
        assert best in (0.2, 0.6)
        assert gp.predict(X[:3])[0].shape == (3,)

    def test_sample_posterior_validates_num_samples(self, rng):
        X, y = self._train_data(rng)
        gp = GaussianProcess().fit(X, y)
        with pytest.raises(ValueError):
            gp.sample_posterior(X, num_samples=0)

    def test_num_observations(self, rng):
        X, y = self._train_data(rng, n=12)
        gp = GaussianProcess()
        assert gp.num_observations == 0
        gp.fit(X, y)
        assert gp.num_observations == 12
        assert gp.is_fitted
