"""Batched-vs-scalar parity of the candidate-evaluation hot path.

The batched engine (`predict_batch` / `PartitionAnalyzer.evaluate_batch` /
`EvaluationEngine.evaluate_batch` / `PartitionAwareEvaluator.evaluate_pool`)
must reproduce the scalar reference path to <= 1e-9 for any architecture of
any registered search space under any channel mix, and the engine's
hit/miss counters must account for every pool position.
"""

import functools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.engine import EvaluationEngine
from repro.api.registry import SEARCH_SPACES
from repro.core.evaluation import PartitionAwareEvaluator, space_partition_graph
from repro.accuracy.surrogate import AccuracySurrogate
from repro.hardware.device import jetson_tx2_gpu
from repro.hardware.predictors import (
    LayerPerformancePredictor,
    OracleLayerPredictor,
)
from repro.optim.mobo import MultiObjectiveBayesianOptimizer
from repro.partition.partitioner import PartitionAnalyzer
from repro.wireless.channel import WirelessChannel

PARITY = 1e-9

METRIC_FIELDS = (
    "latency_s",
    "energy_j",
    "edge_latency_s",
    "edge_energy_j",
    "comm_latency_s",
    "comm_energy_j",
    "transferred_bytes",
)

SPACE_NAMES = ("lens-vgg", "resnet-v1", "seq-conv1d")


@functools.lru_cache(maxsize=None)
def _space(name):
    return SEARCH_SPACES.create(name)


@functools.lru_cache(maxsize=1)
def _oracle():
    return OracleLayerPredictor(jetson_tx2_gpu())


@functools.lru_cache(maxsize=1)
def _trained():
    return LayerPerformancePredictor.train_for_device(
        jetson_tx2_gpu(), samples_per_type=40, seed=7
    )


def _assert_evaluations_match(scalar_eval, batched_eval, tolerance=PARITY):
    assert scalar_eval.architecture_name == batched_eval.architecture_name
    assert (
        scalar_eval.partition_point_indices == batched_eval.partition_point_indices
    )
    assert [m.option for m in scalar_eval.options] == [
        m.option for m in batched_eval.options
    ]
    for field in ("layer_latencies_s", "layer_energies_j", "layer_output_bytes"):
        np.testing.assert_allclose(
            getattr(scalar_eval, field), getattr(batched_eval, field),
            rtol=0, atol=tolerance,
        )
    for scalar_metrics, batched_metrics in zip(
        scalar_eval.options, batched_eval.options
    ):
        for field in METRIC_FIELDS:
            assert abs(
                getattr(scalar_metrics, field) - getattr(batched_metrics, field)
            ) <= tolerance


# ---------------------------------------------------------------------- property tests

@settings(max_examples=20, deadline=None)
@given(
    space_name=st.sampled_from(SPACE_NAMES),
    seed=st.integers(0, 2**31 - 1),
    pool_size=st.integers(1, 5),
    uplinks=st.lists(
        st.floats(0.2, 60.0, allow_nan=False), min_size=1, max_size=3
    ),
    round_trip=st.floats(0.0, 0.2, allow_nan=False),
)
def test_analyzer_batch_matches_scalar_across_spaces(
    space_name, seed, pool_size, uplinks, round_trip
):
    """analyzer.evaluate_batch == analyzer.evaluate for random candidates."""
    space = _space(space_name)
    predictor = _oracle()
    rng = np.random.default_rng(seed)
    genotypes = [space.sample(rng) for _ in range(pool_size)]
    architectures = [space.decode_for_performance(g) for g in genotypes]
    graphs = [space_partition_graph(space, a) for a in architectures]
    channels = [
        WirelessChannel.create("wifi", uplink_mbps=u, round_trip_s=round_trip)
        for u in uplinks
    ]
    analyzer = PartitionAnalyzer(predictor, channels[0])
    batched = analyzer.evaluate_batch(architectures, channels=channels, graphs=graphs)
    for i, architecture in enumerate(architectures):
        predictions = tuple(
            predictor.predict_layer(s) for s in architecture.summarize()
        )
        for ci, channel in enumerate(channels):
            scalar = analyzer.with_channel(channel).evaluate(
                architecture, predictions=predictions, graph=graphs[i]
            )
            _assert_evaluations_match(scalar, batched[i][ci])


@settings(max_examples=15, deadline=None)
@given(
    space_name=st.sampled_from(SPACE_NAMES),
    seed=st.integers(0, 2**31 - 1),
    pool_size=st.integers(1, 4),
)
def test_predict_batch_matches_predict_layer(space_name, seed, pool_size):
    """The vectorised per-family predictor equals the per-layer scalar path."""
    space = _space(space_name)
    predictor = _trained()
    rng = np.random.default_rng(seed)
    architectures = [
        space.decode_for_performance(space.sample(rng)) for _ in range(pool_size)
    ]
    batched = predictor.predict_batch(architectures)
    for architecture, predictions in zip(architectures, batched):
        reference = [
            predictor.predict_layer(s) for s in architecture.summarize()
        ]
        assert len(predictions) == len(reference)
        for got, want in zip(predictions, reference):
            assert abs(got.latency_s - want.latency_s) <= PARITY
            assert abs(got.power_w - want.power_w) <= PARITY
            assert abs(got.energy_j - want.energy_j) <= PARITY


@settings(max_examples=10, deadline=None)
@given(space_name=st.sampled_from(SPACE_NAMES), seed=st.integers(0, 2**31 - 1))
def test_evaluate_pool_matches_evaluate_genotype(space_name, seed):
    """evaluate_pool produces the records evaluate_genotype would, in order."""
    space = _space(space_name)
    channel = WirelessChannel.create("wifi", uplink_mbps=3.0)
    analyzer = PartitionAnalyzer(_oracle(), channel)
    rng = np.random.default_rng(seed)
    genotypes = [space.sample(rng) for _ in range(4)]

    pool_evaluator = PartitionAwareEvaluator(
        space, AccuracySurrogate(), analyzer, engine=EvaluationEngine()
    )
    scalar_evaluator = PartitionAwareEvaluator(
        space, AccuracySurrogate(), analyzer, engine=None
    )
    pooled = pool_evaluator.evaluate_pool(genotypes)
    for genotype, (objectives, metadata) in zip(genotypes, pooled):
        ref_objectives, ref_metadata = scalar_evaluator.evaluate_genotype(genotype)
        np.testing.assert_allclose(objectives, ref_objectives, rtol=0, atol=PARITY)
        got = metadata["evaluation"]
        want = ref_metadata["evaluation"]
        assert got.genotype == want.genotype
        assert got.architecture_name == want.architecture_name
        assert got.best_latency_option == want.best_latency_option
        assert got.best_energy_option == want.best_energy_option
        assert abs(got.latency_s - want.latency_s) <= PARITY
        assert abs(got.energy_j - want.energy_j) <= PARITY
        assert abs(got.all_edge_latency_s - want.all_edge_latency_s) <= PARITY
        assert got.extras["num_partition_points"] == want.extras["num_partition_points"]


# ---------------------------------------------------------------------- cloud suffix

def test_cloud_suffix_reversed_cumsum_matches_per_cut_resum():
    """The reversed-cumsum cloud suffix equals the per-cut re-walk it replaced."""
    space = _space("lens-vgg")
    rng = np.random.default_rng(3)
    architecture = space.decode_for_performance(space.sample(rng))
    edge = _oracle()
    cloud = OracleLayerPredictor(jetson_tx2_gpu())
    channel = WirelessChannel.create("wifi", uplink_mbps=3.0)
    analyzer = PartitionAnalyzer(edge, channel, cloud_predictor=cloud)

    suffix = analyzer._cloud_suffix_latencies(architecture)
    summaries = architecture.summarize()
    assert suffix is not None and len(suffix) == len(summaries) + 1
    for first in range(len(summaries) + 1):
        reference = sum(
            cloud.predict_layer(s).latency_s for s in summaries[first:]
        )
        assert abs(suffix[first] - reference) <= PARITY
    # All-Cloud / split latencies pick up the suffix in both paths.
    scalar = analyzer.evaluate(architecture)
    batched = analyzer.evaluate_batch([architecture])[0][0]
    _assert_evaluations_match(scalar, batched)
    assert scalar.all_cloud.latency_s > channel.cost(architecture.input_bytes).latency_s


# ---------------------------------------------------------------------- engine stats

class TestEngineBatchStats:
    @pytest.fixture()
    def engine(self):
        return EvaluationEngine()

    @pytest.fixture()
    def pool(self):
        space = _space("lens-vgg")
        rng = np.random.default_rng(11)
        a1 = space.decode_for_performance(space.sample(rng))
        a2 = space.decode_for_performance(space.sample(rng))
        return [a1, a2, a1]  # duplicate on purpose

    @pytest.fixture()
    def channels(self):
        return [
            WirelessChannel.create("wifi", uplink_mbps=3.0),
            WirelessChannel.create("lte", uplink_mbps=1.0, round_trip_s=0.05),
        ]

    def test_cold_pool_counts_unique_misses_and_duplicate_hits(
        self, engine, pool, channels
    ):
        analyzer = PartitionAnalyzer(_oracle(), channels[0])
        results = engine.evaluate_batch(pool, analyzer, channels=channels)
        assert len(results) == 3 and all(len(row) == 2 for row in results)
        # Two unique architectures were predicted once each...
        assert engine.stats.layer_misses == 2
        assert engine.stats.layer_hits == 0
        # ...and costed once per channel; the duplicate is pure cache re-use.
        assert engine.stats.partition_misses == 4
        assert engine.stats.partition_hits == 2
        # The duplicate positions share the cached records.
        assert results[0][0] is results[2][0]
        assert results[0][1] is results[2][1]

    def test_warm_pool_is_all_hits_and_skips_the_layer_cache(
        self, engine, pool, channels
    ):
        analyzer = PartitionAnalyzer(_oracle(), channels[0])
        engine.evaluate_batch(pool, analyzer, channels=channels)
        before = engine.stats.snapshot()
        again = engine.evaluate_batch(pool, analyzer, channels=channels)
        delta = engine.stats.since(before)
        assert delta == {
            "predictor_hits": 0,
            "predictor_misses": 0,
            "layer_hits": 0,  # fully cached pools never touch the layer cache
            "layer_misses": 0,
            "partition_hits": 6,
            "partition_misses": 0,
        }
        assert again[1][1] is engine.evaluate_batch(pool, analyzer, channels=channels)[1][1]

    def test_batch_results_match_scalar_engine_path(self, engine, pool, channels):
        analyzer = PartitionAnalyzer(_oracle(), channels[0])
        batched = engine.evaluate_batch(pool, analyzer, channels=channels)
        scalar_engine = EvaluationEngine()
        for i, architecture in enumerate(pool):
            for ci, channel in enumerate(channels):
                scalar = scalar_engine.evaluate_partitions(
                    architecture, analyzer.with_channel(channel)
                )
                _assert_evaluations_match(scalar, batched[i][ci])

    def test_batch_backfills_caches_for_scalar_callers(self, engine, pool, channels):
        analyzer = PartitionAnalyzer(_oracle(), channels[0])
        batched = engine.evaluate_batch(pool, analyzer, channels=channels)
        before = engine.stats.snapshot()
        scalar = engine.evaluate_partitions(pool[0], analyzer)
        assert scalar is batched[0][0]
        assert engine.stats.since(before)["partition_hits"] == 1
        assert engine.stats.since(before)["partition_misses"] == 0

    def test_partial_cache_overlap_computes_only_missing_cells(
        self, engine, channels
    ):
        """Ragged warm cells are served from cache, not recomputed."""
        space = _space("lens-vgg")
        rng = np.random.default_rng(21)
        a, b = (
            space.decode_for_performance(space.sample(rng)) for _ in range(2)
        )
        analyzer = PartitionAnalyzer(_oracle(), channels[0])
        warm_a0 = engine.evaluate_partitions(a, analyzer)
        warm_b1 = engine.evaluate_partitions(
            b, analyzer.with_channel(channels[1])
        )
        before = engine.stats.snapshot()
        rows = engine.evaluate_batch([a, b], analyzer, channels=channels)
        delta = engine.stats.since(before)
        # The two warm cells come back as the cached records themselves...
        assert rows[0][0] is warm_a0
        assert rows[1][1] is warm_b1
        # ...and only the two genuinely missing cells were computed.
        assert delta["partition_hits"] == 2
        assert delta["partition_misses"] == 2
        for architecture, row in ((a, rows[0]), (b, rows[1])):
            for channel, evaluation in zip(channels, row):
                scalar = analyzer.with_channel(channel).evaluate(architecture)
                _assert_evaluations_match(scalar, evaluation)

    def test_duplicate_channels_are_computed_once(self, engine, pool, channels):
        """A repeated channel column is cache re-use, not recomputation."""
        analyzer = PartitionAnalyzer(_oracle(), channels[0])
        rows = engine.evaluate_batch(
            pool, analyzer, channels=[channels[0], channels[1], channels[0]]
        )
        assert all(len(row) == 3 for row in rows)
        for row in rows:
            assert row[0] is row[2]
        # 2 unique archs x 2 unique channels computed; the rest are hits.
        assert engine.stats.partition_misses == 4
        assert engine.stats.partition_hits == 9 - 4

    def test_cloud_predictor_batch_matches_scalar(self, channels):
        """Batched cloud-suffix costing equals the scalar cloud path."""
        space = _space("lens-vgg")
        rng = np.random.default_rng(13)
        architectures = [
            space.decode_for_performance(space.sample(rng)) for _ in range(3)
        ]
        analyzer = PartitionAnalyzer(
            _oracle(), channels[0], cloud_predictor=_trained()
        )
        batched = analyzer.evaluate_batch(architectures, channels=channels)
        for i, architecture in enumerate(architectures):
            for ci, channel in enumerate(channels):
                scalar = analyzer.with_channel(channel).evaluate(architecture)
                _assert_evaluations_match(scalar, batched[i][ci])

    def test_graph_override_isolated_in_batch_cache(self, engine, channels):
        space = _space("resnet-v1")
        rng = np.random.default_rng(5)
        architecture = space.decode_for_performance(space.sample(rng))
        analyzer = PartitionAnalyzer(_oracle(), channels[0])
        own = engine.evaluate_batch([architecture], analyzer)[0][0]
        from repro.nn.graph import PartitionGraph

        linear = PartitionGraph(num_layers=len(architecture.layers))
        overridden = engine.evaluate_batch(
            [architecture], analyzer, graphs=[linear]
        )[0][0]
        assert own is not overridden
        # The linear override can only widen the cut set.
        assert set(own.partition_point_indices) <= set(
            overridden.partition_point_indices
        )


def test_totals_single_pass_and_engine_layer_cache():
    """total_latency/total_energy derive from one prediction pass."""
    space = _space("lens-vgg")
    rng = np.random.default_rng(1)
    architecture = space.decode_for_performance(space.sample(rng))
    predictor = _oracle()
    predictions = predictor.predict_architecture(architecture)
    latency, energy = predictor.totals(architecture, predictions)
    assert latency == pytest.approx(sum(p.latency_s for p in predictions))
    assert energy == pytest.approx(sum(p.energy_j for p in predictions))
    assert predictor.total_latency(architecture) == pytest.approx(latency)
    assert predictor.total_energy(architecture, predictions) == pytest.approx(energy)

    engine = EvaluationEngine()
    first = engine.architecture_totals(predictor, architecture)
    second = engine.architecture_totals(predictor, architecture)
    assert first == second == (latency, energy)
    # One miss for the initial prediction pass, then pure layer-cache hits.
    assert engine.stats.layer_misses == 1
    assert engine.stats.layer_hits == 1


def test_prediction_error_report_engine_routing_matches_direct():
    """The engine-routed error report equals the direct batched one."""
    from repro.hardware.predictors import prediction_error_report

    space = _space("lens-vgg")
    rng = np.random.default_rng(4)
    pool = [space.decode_for_performance(space.sample(rng)) for _ in range(3)]
    predictor = _trained()
    direct = prediction_error_report(predictor, pool)
    engine = EvaluationEngine()
    routed = prediction_error_report(predictor, pool, engine=engine)
    assert routed == pytest.approx(direct)
    before = engine.stats.snapshot()
    prediction_error_report(predictor, pool, engine=engine)
    delta = engine.stats.since(before)
    # Second engine-routed report is pure layer-cache hits (both predictors).
    assert delta["layer_misses"] == 0
    assert delta["layer_hits"] == 6


# ---------------------------------------------------------------------- MOBO pool path

def _toy_problem():
    grid = 17

    def sample(rng):
        return np.array([rng.integers(0, grid), rng.integers(0, grid)])

    def features(candidate):
        return np.asarray(candidate, dtype=float) / (grid - 1)

    def objectives(candidate):
        x = np.asarray(candidate, dtype=float) / (grid - 1)
        return np.array([x[0], (1 - x[0]) * (1 + x[1])]), {"tag": int(x.sum() * 10)}

    return sample, features, objectives


def test_mobo_batch_objective_fn_is_sequence_identical():
    """Pool-level evaluation changes neither candidates nor bookkeeping."""
    sample, features, objectives = _toy_problem()

    def run(batch):
        calls = {"batched": 0}

        def batch_objective(candidates):
            calls["batched"] += 1
            return [objectives(c) for c in candidates]

        optimizer = MultiObjectiveBayesianOptimizer(
            sample_fn=sample,
            feature_fn=features,
            objective_fn=objectives,
            batch_objective_fn=batch_objective if batch else None,
            num_objectives=2,
            num_initial=6,
            num_iterations=8,
            candidate_pool_size=24,
            seed=42,
        )
        return optimizer.run(), calls["batched"]

    scalar_result, _ = run(batch=False)
    batched_result, batched_calls = run(batch=True)
    # One batched call for the init pool, one per BO iteration.
    assert batched_calls == 1 + 8
    assert [list(map(int, p.candidate)) for p in batched_result.points] == [
        list(map(int, p.candidate)) for p in scalar_result.points
    ]
    assert [p.iteration for p in batched_result.points] == [
        p.iteration for p in scalar_result.points
    ]
    assert [p.phase for p in batched_result.points] == [
        p.phase for p in scalar_result.points
    ]
    np.testing.assert_allclose(
        batched_result.objective_matrix(), scalar_result.objective_matrix()
    )
