"""Tests for the Huang et al. radio power models."""

import pytest
from hypothesis import given, strategies as st

from repro.wireless.power_models import (
    HUANG_COEFFICIENTS_MILLIWATTS,
    SUPPORTED_TECHNOLOGIES,
    RadioPowerModel,
)


def test_supported_technologies():
    assert set(SUPPORTED_TECHNOLOGIES) == {"lte", "wifi", "3g"}


def test_lte_coefficients_match_published_values():
    model = RadioPowerModel.for_technology("lte")
    assert model.alpha_w_per_mbps == pytest.approx(0.43839)
    assert model.beta_w == pytest.approx(1.28804)


def test_wifi_coefficients_match_published_values():
    model = RadioPowerModel.for_technology("wifi")
    assert model.alpha_w_per_mbps == pytest.approx(0.28317)
    assert model.beta_w == pytest.approx(0.13286)


def test_power_is_linear_in_throughput():
    model = RadioPowerModel.for_technology("lte")
    assert model.power_w(10.0) == pytest.approx(0.43839 * 10 + 1.28804)


def test_technology_name_is_case_insensitive():
    assert RadioPowerModel.for_technology("WiFi").technology == "wifi"


def test_unknown_technology_rejected():
    with pytest.raises(ValueError):
        RadioPowerModel.for_technology("5g")


def test_lte_draws_more_power_than_wifi_at_same_rate():
    lte = RadioPowerModel.for_technology("lte")
    wifi = RadioPowerModel.for_technology("wifi")
    for tu in (0.5, 3.0, 10.0, 30.0):
        assert lte.power_w(tu) > wifi.power_w(tu)


def test_transmission_energy():
    model = RadioPowerModel.for_technology("wifi")
    assert model.transmission_energy_j(3.0, 0.5) == pytest.approx(model.power_w(3.0) * 0.5)


def test_negative_inputs_rejected():
    model = RadioPowerModel.for_technology("wifi")
    with pytest.raises(ValueError):
        model.power_w(-1.0)
    with pytest.raises(ValueError):
        model.transmission_energy_j(1.0, -0.1)
    with pytest.raises(ValueError):
        RadioPowerModel("x", alpha_w_per_mbps=-0.1, beta_w=0.0)


def test_to_dict():
    data = RadioPowerModel.for_technology("3g").to_dict()
    assert data["technology"] == "3g"
    assert data["alpha_w_per_mbps"] == pytest.approx(0.86898)


@given(st.floats(min_value=0.01, max_value=100.0))
def test_property_power_increases_with_throughput(tu):
    model = RadioPowerModel.for_technology("lte")
    assert model.power_w(tu * 1.5) > model.power_w(tu)
