"""Tests for the EPDC acquisition subsystem and q-batch selection."""

import numpy as np
import pytest

from repro.optim.acquisition import acquisition_scores
from repro.optim.epdc import (
    DEFAULT_EPDC_SAMPLES,
    epdc_score_matrix,
    epdc_scores,
    pareto_distance_contributions,
    select_batch,
)
from repro.optim.gp import GaussianProcess
from repro.optim.gp_bank import GPBank
from repro.optim.mobo import MultiObjectiveBayesianOptimizer
from repro.optim.pareto import pareto_front_mask


def _training_data():
    rng = np.random.default_rng(99)
    X = rng.uniform(size=(25, 2))
    y1 = X[:, 0] ** 2 + 0.1 * X[:, 1]
    y2 = (1 - X[:, 0]) ** 2 + 0.1 * X[:, 1]
    return X, y1, y2


@pytest.fixture
def fitted_models():
    X, y1, y2 = _training_data()
    return [
        GaussianProcess(noise_variance=1e-6).fit(X, y1),
        GaussianProcess(noise_variance=1e-6).fit(X, y2),
    ]


@pytest.fixture
def fitted_bank():
    X, y1, y2 = _training_data()
    return GPBank(num_objectives=2, noise_variance=1e-6).fit(
        X, np.column_stack([y1, y2])
    )


FRONT = np.array([[0.1, 0.9], [0.5, 0.5], [0.9, 0.1]])


class TestDistanceContributions:
    def test_dominated_samples_contribute_zero(self):
        samples = np.array([[0.6, 0.6], [0.95, 0.95], [0.5, 0.5]])  # last = front point
        contributions = pareto_distance_contributions(samples, FRONT)
        assert np.all(contributions == 0.0)

    def test_improving_sample_contributes_distance_to_nearest_front_point(self):
        samples = np.array([[0.4, 0.4]])
        contributions = pareto_distance_contributions(samples, FRONT)
        expected = np.linalg.norm([0.4 - 0.5, 0.4 - 0.5])
        assert contributions[0] == pytest.approx(expected)

    def test_trade_off_sample_contributes_its_gap(self):
        # Not dominated by any front point (better on objective 1 than all).
        samples = np.array([[0.05, 1.5]])
        contributions = pareto_distance_contributions(samples, FRONT)
        assert contributions[0] > 0.0

    def test_empty_front_falls_back_to_norms(self):
        samples = np.array([[3.0, 4.0], [0.0, 0.0]])
        contributions = pareto_distance_contributions(samples, np.empty((0, 2)))
        assert contributions == pytest.approx([5.0, 0.0])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pareto_distance_contributions(np.ones((2, 3)), FRONT)


class TestEpdcScores:
    def test_shape_and_finiteness(self, fitted_models, rng):
        pool = rng.uniform(size=(12, 2))
        scores = epdc_scores(fitted_models, pool, FRONT, rng=rng)
        assert scores.shape == (12,)
        assert np.all(np.isfinite(scores))
        assert np.all(scores >= 0.0)

    def test_deterministic_under_seeded_rng(self, fitted_models, rng):
        pool = rng.uniform(size=(10, 2))
        first = epdc_scores(fitted_models, pool, FRONT, rng=7)
        second = epdc_scores(fitted_models, pool, FRONT, rng=7)
        assert np.array_equal(first, second)

    def test_bank_and_list_agree(self, fitted_models, fitted_bank, rng):
        """GPBank and per-model lists consume the RNG identically."""
        pool = rng.uniform(size=(10, 2))
        from_list = epdc_scores(fitted_models, pool, FRONT, rng=3)
        from_bank = epdc_scores(fitted_bank, pool, FRONT, rng=3)
        assert from_list == pytest.approx(from_bank, abs=1e-9)

    def test_sample_count_validation(self, fitted_models, rng):
        with pytest.raises(ValueError):
            epdc_scores(
                fitted_models, rng.uniform(size=(4, 2)), FRONT, num_samples=0
            )

    def test_score_matrix_is_negated_and_tiled(self, fitted_models, rng):
        pool = rng.uniform(size=(8, 2))
        values = epdc_scores(fitted_models, pool, FRONT, rng=5)
        matrix = epdc_score_matrix(fitted_models, pool, FRONT, rng=5)
        assert matrix.shape == (8, 2)
        assert matrix[:, 0] == pytest.approx(-values)
        assert np.array_equal(matrix[:, 0], matrix[:, 1])

    def test_dispatch_through_acquisition_scores(self, fitted_models, rng):
        pool = rng.uniform(size=(6, 2))
        direct = epdc_score_matrix(fitted_models, pool, FRONT, rng=11)
        dispatched = acquisition_scores(
            "epdc", fitted_models, pool, rng=11, front=FRONT
        )
        assert np.array_equal(direct, dispatched)

    def test_default_sample_count_is_modest(self):
        # the MC loop runs once per draw; keep the default cheap
        assert 1 <= DEFAULT_EPDC_SAMPLES <= 64


class TestSelectBatch:
    def test_returns_requested_number_of_distinct_indices(self, rng):
        scores = rng.uniform(size=20)
        features = rng.uniform(size=(20, 5))
        batch = select_batch(scores, features, 6)
        assert len(batch) == 6
        assert len(set(batch)) == 6
        assert all(0 <= index < 20 for index in batch)

    def test_first_pick_is_the_best_score(self, rng):
        scores = rng.uniform(size=15)
        features = rng.uniform(size=(15, 4))
        batch = select_batch(scores, features, 4)
        assert batch[0] == int(np.argmin(scores))

    def test_batch_larger_than_pool_is_clamped(self, rng):
        scores = rng.uniform(size=3)
        features = rng.uniform(size=(3, 2))
        assert sorted(select_batch(scores, features, 10)) == [0, 1, 2]

    def test_single_point_batch_matches_argmin(self, rng):
        scores = rng.uniform(size=9)
        features = rng.uniform(size=(9, 3))
        assert select_batch(scores, features, 1) == [int(np.argmin(scores))]

    def test_duplicate_designs_are_avoided(self):
        # Three near-identical good designs and one distinct mediocre one:
        # the penalty should pull the distinct design into a batch of two.
        features = np.array(
            [[0.5, 0.5], [0.5, 0.5], [0.50001, 0.5], [0.9, 0.1]]
        )
        scores = np.array([0.0, 0.01, 0.02, 0.5])
        batch = select_batch(
            scores, features, 2, lengthscale=0.1, penalty_weight=2.0
        )
        assert batch[0] == 0
        assert batch[1] == 3

    def test_degenerate_scores_select_for_diversity(self):
        features = np.array([[0.0, 0.0], [0.01, 0.0], [1.0, 1.0]])
        scores = np.zeros(3)
        batch = select_batch(scores, features, 2)
        # constant scores: after the first (index 0) pick the farthest design
        assert batch == [0, 2]

    def test_deterministic(self, rng):
        scores = rng.uniform(size=30)
        features = rng.uniform(size=(30, 6))
        assert select_batch(scores, features, 8) == select_batch(
            scores, features, 8
        )

    def test_empty_pool(self):
        assert select_batch(np.array([]), np.empty((0, 3)), 4) == []

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            select_batch(rng.uniform(size=5), rng.uniform(size=(5, 2)), 0)
        with pytest.raises(ValueError):
            select_batch(rng.uniform(size=5), rng.uniform(size=(4, 2)), 2)


def _toy_optimizer(**overrides):
    """A tiny synthetic two-objective MOBO problem (no evaluator needed)."""
    def sample_fn(rng):
        return rng.uniform(size=3)

    def objective_fn(x):
        x = np.asarray(x, dtype=float)
        return np.array([float(np.sum(x**2)), float(np.sum((1.0 - x) ** 2))])

    settings = dict(
        sample_fn=sample_fn,
        feature_fn=lambda x: np.asarray(x, dtype=float),
        objective_fn=objective_fn,
        num_objectives=2,
        num_initial=4,
        num_iterations=6,
        candidate_pool_size=16,
        seed=0,
    )
    settings.update(overrides)
    return MultiObjectiveBayesianOptimizer(**settings)


class TestBatchedMobo:
    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            _toy_optimizer(batch_size=0)

    @pytest.mark.parametrize("acquisition", ["ts", "epdc"])
    @pytest.mark.parametrize("batch_size", [1, 3, 4])
    def test_budget_is_respected_for_any_batch_size(self, acquisition, batch_size):
        result = _toy_optimizer(
            acquisition=acquisition, batch_size=batch_size
        ).run()
        assert len(result.points) == 4 + 6  # num_initial + num_iterations
        bo_points = [p for p in result.points if p.phase == "bo"]
        assert len(bo_points) == 6
        assert sorted(p.iteration for p in result.points) == list(range(10))

    def test_epdc_runs_and_archives_non_dominated_points(self):
        result = _toy_optimizer(acquisition="epdc", batch_size=2).run()
        front = result.pareto_objectives()
        assert front.shape[0] >= 1
        assert pareto_front_mask(front).all()

    def test_batch_size_one_matches_legacy_sequence(self):
        """q=1 must reproduce the old one-candidate-per-iteration loop exactly."""
        baseline = _toy_optimizer(acquisition="ts", batch_size=1).run()
        again = _toy_optimizer(acquisition="ts").run()
        for a, b in zip(baseline.points, again.points):
            assert np.array_equal(a.objectives, b.objectives)
            assert a.iteration == b.iteration
