"""Tests for crash-safe checkpoint/resume: snapshots, replay, bitwise parity.

The fault-injection/ladder/quarantine half of the resilience layer is
covered in ``tests/test_resilience.py``; this module pins the checkpoint
format, the recorder's flush/drift-guard behaviour, the replay-grouping
helper, and the end-to-end guarantee: a search killed mid-run and resumed
with a *fresh* engine produces a bitwise-identical outcome.
"""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.api.engine import EvaluationEngine
from repro.api.envelopes import SearchRequest
from repro.api.session import _replay_group_sizes, run_search
from repro.campaign.manifest import (
    CampaignManifest,
    backoff_jitter_factor,
    resolve_backoff,
)
from repro.campaign.sharded import ShardedRunStore
from repro.campaign.worker import run_worker
from repro.resilience import faults
from repro.resilience.checkpoint import (
    CHECKPOINT_FILENAME,
    CheckpointRecord,
    CheckpointRecorder,
    SearchCheckpoint,
)
from repro.resilience.faults import FaultInjector, KilledByFault
from repro.resilience.health import HealthLog

FAST = dict(
    strategy="lens",
    scenario="wifi-3mbps/jetson-tx2-gpu",
    num_initial=3,
    num_iterations=4,
    candidate_pool_size=16,
    predictor_samples_per_type=40,
    seed=3,
)


def _comparable(outcome):
    """Outcome dict minus run-local noise (timing, cache stats, health)."""
    data = outcome.to_dict()
    for key in ("wall_time_s", "engine_stats", "health"):
        data.pop(key, None)
    return data


def _run(small_search_space, **kwargs):
    """A FAST search on a fresh engine (no cross-run cache warm-up)."""
    params = dict(FAST)
    params.update(kwargs)
    return run_search(
        search_space=small_search_space, engine=EvaluationEngine(), **params
    )


# ---------------------------------------------------------------- snapshot format


class TestSearchCheckpoint:
    def _checkpoint(self):
        records = [
            CheckpointRecord(
                genotype=(1, 2, 3),
                features=(0.1, 0.2),
                objectives=(5.0, 0.01, 2.0),
                index=i,
                metadata={"architecture": f"arch-{i}"},
            )
            for i in range(3)
        ]
        return SearchCheckpoint(
            fingerprint="abc123", records=records, rng_state={"state": 7}
        )

    def test_round_trip(self):
        checkpoint = self._checkpoint()
        restored = SearchCheckpoint.from_dict(checkpoint.to_dict())
        assert restored == checkpoint
        assert restored.num_evaluations == 3
        assert restored.genotypes() == [(1, 2, 3)] * 3

    def test_future_schema_rejected(self):
        data = self._checkpoint().to_dict()
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            SearchCheckpoint.from_dict(data)

    def test_save_load_round_trip(self, tmp_path):
        checkpoint = self._checkpoint()
        cell_dir = SearchCheckpoint.cell_dir(tmp_path, checkpoint.fingerprint)
        path = checkpoint.save(cell_dir)
        assert path == cell_dir / CHECKPOINT_FILENAME
        assert SearchCheckpoint.load(cell_dir) == checkpoint

    def test_load_missing_returns_none(self, tmp_path):
        assert SearchCheckpoint.load(tmp_path / "nope") is None

    def test_load_corrupt_returns_none_and_records(self, tmp_path):
        cell_dir = tmp_path / "cell"
        cell_dir.mkdir()
        (cell_dir / CHECKPOINT_FILENAME).write_text("{torn write")
        health = HealthLog()
        assert SearchCheckpoint.load(cell_dir, health=health) is None
        assert health.count("H_CHECKPOINT_CORRUPT") == 1

    def test_discard_is_idempotent(self, tmp_path):
        checkpoint = self._checkpoint()
        cell_dir = SearchCheckpoint.cell_dir(tmp_path, "abc123")
        checkpoint.save(cell_dir)
        SearchCheckpoint.discard(tmp_path, "abc123")
        assert not cell_dir.exists()
        SearchCheckpoint.discard(tmp_path, "abc123")  # second call: no error


# ---------------------------------------------------------------- recorder


def _fake_evaluation(genotype, objectives):
    evaluation = SimpleNamespace(
        genotype=np.asarray(genotype, dtype=int),
        architecture_name="fake",
    )
    evaluation.metrics = dict(
        zip(("error_percent", "latency_s", "energy_j"), objectives)
    )
    return evaluation


def _recorder(cell_dir, **kwargs):
    return CheckpointRecorder(
        cell_dir,
        fingerprint="fp",
        feature_fn=lambda genotype: [float(g) / 10 for g in genotype],
        objectives_fn=lambda ev: list(ev.metrics.values()),
        **kwargs,
    )


class TestCheckpointRecorder:
    def test_periodic_flush_and_finalize(self, tmp_path):
        health = HealthLog()
        recorder = _recorder(tmp_path / "fp", every=2, health=health)
        for i in range(5):
            recorder.on_evaluation(i, _fake_evaluation([i, i], [1.0, 2.0, 3.0]))
        # flushed at 2 and 4 evaluations, not yet at 5
        assert health.count("H_CHECKPOINT_SAVED") == 2
        partial = SearchCheckpoint.load(tmp_path / "fp")
        assert partial.num_evaluations == 4 and not partial.complete
        recorder.finalize()
        final = SearchCheckpoint.load(tmp_path / "fp")
        assert final.num_evaluations == 5 and final.complete
        assert [r.index for r in final.records] == list(range(5))

    def test_every_zero_flushes_only_on_finalize(self, tmp_path):
        recorder = _recorder(tmp_path / "fp", every=0)
        for i in range(7):
            recorder.on_evaluation(i, _fake_evaluation([i], [1.0, 2.0, 3.0]))
        assert SearchCheckpoint.load(tmp_path / "fp") is None
        recorder.finalize()
        assert SearchCheckpoint.load(tmp_path / "fp").num_evaluations == 7

    def test_negative_every_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            _recorder(tmp_path / "fp", every=-1)

    def test_bound_rng_state_snapshotted(self, tmp_path):
        recorder = _recorder(tmp_path / "fp", every=1)
        rng = np.random.default_rng(0)
        recorder.bind_rng(rng)
        recorder.on_evaluation(0, _fake_evaluation([1], [1.0, 2.0, 3.0]))
        snapshot = SearchCheckpoint.load(tmp_path / "fp")
        assert snapshot.rng_state == json.loads(
            json.dumps(rng.bit_generator.state)
        )

    def test_drift_guard_fires_once_on_divergence(self, tmp_path):
        recorded = SearchCheckpoint(
            fingerprint="fp",
            records=[
                CheckpointRecord(
                    genotype=(9, 9),
                    features=(0.9, 0.9),
                    objectives=(9.0, 9.0, 9.0),
                    index=i,
                )
                for i in range(2)
            ],
        )
        health = HealthLog()
        recorder = _recorder(
            tmp_path / "fp", every=0, health=health, resume_from=recorded
        )
        for i in range(2):  # both replayed evaluations diverge; reported once
            recorder.on_evaluation(i, _fake_evaluation([i, i], [1.0, 2.0, 3.0]))
        assert health.count("H_RESUME_DRIFT") == 1

    def test_matching_replay_reports_no_drift(self, tmp_path):
        evaluations = [
            _fake_evaluation([i, i], [1.0 + i, 2.0, 3.0]) for i in range(3)
        ]
        health = HealthLog()
        first = _recorder(tmp_path / "fp", every=0, health=health)
        for i, evaluation in enumerate(evaluations):
            first.on_evaluation(i, evaluation)
        first.finalize()
        recorded = SearchCheckpoint.load(tmp_path / "fp")
        replayer = _recorder(
            tmp_path / "fp", every=0, health=health, resume_from=recorded
        )
        for i, evaluation in enumerate(evaluations):
            replayer.on_evaluation(i, evaluation)
        assert health.count("H_RESUME_DRIFT") == 0


# ---------------------------------------------------------------- replay grouping


class TestReplayGroupSizes:
    def _request(self, **kwargs):
        params = dict(FAST)
        params.update(kwargs)
        return SearchRequest(**params)

    def test_mobo_full_history(self):
        # 3 initial + 4 iterations at batch_size=1 -> [3, 1, 1, 1, 1]
        request = self._request()
        assert _replay_group_sizes(request, 7) == [3, 1, 1, 1, 1]

    def test_mobo_truncates_to_group_boundary(self):
        request = self._request()
        assert _replay_group_sizes(request, 5) == [3, 1, 1]
        assert _replay_group_sizes(request, 3) == [3]

    def test_mobo_fewer_than_initial_replays_nothing(self):
        assert _replay_group_sizes(self._request(), 2) == []
        assert _replay_group_sizes(self._request(), 0) == []

    def test_mobo_batched_steps(self):
        request = self._request(num_initial=4, num_iterations=5, batch_size=2)
        # groups: init 4, then q = min(2, remaining) -> [4, 2, 2, 1]
        assert _replay_group_sizes(request, 9) == [4, 2, 2, 1]
        assert _replay_group_sizes(request, 7) == [4, 2]  # 7 < 4+2+2

    def test_random_chunks(self):
        request = self._request(
            strategy="random", num_initial=60, num_iterations=80
        )
        # budget 140 in chunks of 64 -> [64, 64, 12]
        assert _replay_group_sizes(request, 140) == [64, 64, 12]
        assert _replay_group_sizes(request, 100) == [64]
        assert _replay_group_sizes(request, 63) == []

    def test_group_sizes_never_exceed_records(self):
        for records in range(0, 8):
            sizes = _replay_group_sizes(self._request(), records)
            assert sum(sizes) <= records


# ---------------------------------------------------------------- end to end


class TestKillAndResume:
    def test_interrupted_search_resumes_bitwise_identical(
        self, small_search_space, tmp_path
    ):
        golden = _run(small_search_space)

        # Kill the checkpointed run after 5 of its 7 evaluations (raise-mode
        # kill: an in-process stand-in for SIGKILL that still evades
        # `except Exception` recovery).
        with faults.inject(
            FaultInjector(kill_at_evaluation=5, kill_mode="raise")
        ):
            with pytest.raises(KilledByFault):
                _run(
                    small_search_space,
                    checkpoint_dir=tmp_path,
                    checkpoint_every=1,
                )
        fingerprint = SearchRequest(**FAST).fingerprint()
        partial = SearchCheckpoint.load(tmp_path / fingerprint)
        assert partial is not None and not partial.complete
        assert partial.num_evaluations == 5

        resumed = _run(
            small_search_space, checkpoint_dir=tmp_path, checkpoint_every=1
        )
        assert resumed.health.get("H_RESUMED", 0) == 1
        assert resumed.health.get("H_RESUME_DRIFT", 0) == 0
        assert _comparable(resumed) == _comparable(golden)
        # the finalized snapshot marks the cell complete
        assert SearchCheckpoint.load(tmp_path / fingerprint).complete

    def test_fresh_run_ignores_existing_checkpoint(
        self, small_search_space, tmp_path
    ):
        first = _run(
            small_search_space, checkpoint_dir=tmp_path, checkpoint_every=1
        )
        second = _run(
            small_search_space,
            checkpoint_dir=tmp_path,
            checkpoint_every=1,
            resume=False,
        )
        assert second.health.get("H_RESUMED", 0) == 0
        assert _comparable(second) == _comparable(first)

    def test_uncheckpointed_run_matches_checkpointed(
        self, small_search_space, tmp_path
    ):
        # Checkpointing must be observation-only: attaching the recorder
        # cannot perturb the search.
        plain = _run(small_search_space)
        recorded = _run(
            small_search_space, checkpoint_dir=tmp_path, checkpoint_every=2
        )
        assert _comparable(recorded) == _comparable(plain)

    def test_corrupt_checkpoint_restarts_from_zero(
        self, small_search_space, tmp_path
    ):
        golden = _run(small_search_space)
        fingerprint = SearchRequest(**FAST).fingerprint()
        cell_dir = tmp_path / fingerprint
        cell_dir.mkdir(parents=True)
        (cell_dir / CHECKPOINT_FILENAME).write_text("not json at all")
        outcome = _run(
            small_search_space, checkpoint_dir=tmp_path, checkpoint_every=1
        )
        assert outcome.health.get("H_CHECKPOINT_CORRUPT", 0) == 1
        assert outcome.health.get("H_RESUMED", 0) == 0
        assert _comparable(outcome) == _comparable(golden)


# ---------------------------------------------------------------- worker wiring


class TestWorkerCheckpointing:
    def test_checkpointed_cell_stored_and_checkpoint_discarded(self, tmp_path):
        request = SearchRequest(search_space="resnet-v1", **FAST)
        ShardedRunStore(tmp_path)
        manifest = CampaignManifest.from_requests(
            [request], ttl_s=5.0, poll_s=0.05, checkpoint_every=2
        )
        manifest.write(tmp_path)
        report = run_worker(
            tmp_path, worker_id="t", engine=EvaluationEngine(), max_cycles=5
        )
        assert report.executed == 1
        store = ShardedRunStore(tmp_path)
        assert len(store) == 1
        outcome = store.get(request.fingerprint())
        assert outcome.health.get("H_CHECKPOINT_SAVED", 0) >= 1
        # the cell's checkpoint directory is removed once the outcome lands
        assert list((tmp_path / "checkpoints").glob("*/*")) == []

    def test_manifest_checkpoint_every_round_trips(self, tmp_path):
        request = SearchRequest(search_space="resnet-v1", **FAST)
        manifest = CampaignManifest.from_requests([request], checkpoint_every=7)
        manifest.write(tmp_path)
        assert CampaignManifest.load(tmp_path).checkpoint_every == 7
        with pytest.raises(ValueError):
            CampaignManifest.from_requests([request], checkpoint_every=-1)


# ---------------------------------------------------------------- backoff jitter


class TestBackoffJitter:
    def test_factor_is_deterministic_and_bounded(self):
        for fingerprint in ("aaa", "bbb", "ccc"):
            for attempt in range(1, 6):
                factor = backoff_jitter_factor(fingerprint, attempt)
                assert factor == backoff_jitter_factor(fingerprint, attempt)
                assert 0.5 <= factor < 1.5

    def test_factor_decorrelates_cells_and_attempts(self):
        factors = {
            backoff_jitter_factor(fingerprint, attempt)
            for fingerprint in ("aaa", "bbb")
            for attempt in (1, 2, 3)
        }
        assert len(factors) == 6  # all distinct: no lockstep retries

    def test_resolve_backoff_legacy_shape_is_exact(self):
        # the positional (pre-jitter) call keeps its original semantics
        assert resolve_backoff(100.0, 1, 2.0) == 102.0
        assert resolve_backoff(100.0, 3, 2.0) == 108.0

    def test_resolve_backoff_with_fingerprint_scales_by_factor(self):
        ready = resolve_backoff(100.0, 2, 2.0, fingerprint="cell-a")
        expected = 100.0 + 4.0 * backoff_jitter_factor("cell-a", 2)
        assert ready == pytest.approx(expected)
        assert 102.0 <= ready < 106.0  # delay in [0.5, 1.5) x base window
