"""The pluggable search-space protocol and the three registered spaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.registry import SEARCH_SPACES, RegistryError, register_search_space
from repro.nn.resnet_space import ResNetSearchSpace
from repro.nn.search_space import LensSearchSpace
from repro.nn.seq_space import SeqConv1DSearchSpace
from repro.nn.spaces import DEFAULT_SEARCH_SPACE, EncodedSearchSpace, SearchSpace
from repro.utils.rng import ensure_rng

BUILTIN_SPACES = ("lens-vgg", "resnet-v1", "seq-conv1d")


class TestRegistry:
    def test_builtin_spaces_are_registered(self):
        assert set(SEARCH_SPACES.names()) == set(BUILTIN_SPACES)
        assert DEFAULT_SEARCH_SPACE == "lens-vgg"

    def test_create_returns_fresh_instances(self):
        first = SEARCH_SPACES.create("resnet-v1")
        second = SEARCH_SPACES.create("resnet-v1")
        assert isinstance(first, ResNetSearchSpace)
        assert first is not second

    def test_space_name_matches_registry_key(self):
        for name in BUILTIN_SPACES:
            assert SEARCH_SPACES.create(name).space_name == name

    def test_unknown_space_suggests_close_match(self):
        with pytest.raises(RegistryError, match="Did you mean 'resnet-v1'"):
            SEARCH_SPACES.get("resnet-v2")

    def test_register_custom_space(self):
        class TinySpace(LensSearchSpace):
            space_name = "tiny-vgg"

        register_search_space(
            "tiny-vgg", lambda: TinySpace(num_blocks=4, min_pool_layers=2)
        )
        try:
            assert "tiny-vgg" in SEARCH_SPACES
            space = SEARCH_SPACES.create("tiny-vgg")
            assert space.num_blocks == 4
        finally:
            SEARCH_SPACES.unregister("tiny-vgg")


class TestProtocolConformance:
    """Every built-in space honours the full SearchSpace contract."""

    @pytest.fixture(params=BUILTIN_SPACES)
    def space(self, request):
        return SEARCH_SPACES.create(request.param)

    def test_is_search_space(self, space):
        assert isinstance(space, SearchSpace)
        assert isinstance(space, EncodedSearchSpace)

    def test_sample_is_valid_and_deterministic(self, space):
        a = space.sample(ensure_rng(42))
        b = space.sample(ensure_rng(42))
        assert np.array_equal(a, b)
        assert space.is_valid(a)
        assert a.shape == (space.num_genes,)

    def test_sample_batch_shape(self, space):
        batch = space.sample_batch(5, ensure_rng(0))
        assert batch.shape == (5, space.num_genes)
        for genotype in batch:
            assert space.is_valid(genotype)

    def test_neighbours_are_valid_and_differ(self, space):
        rng = ensure_rng(7)
        genotype = space.sample(rng)
        neighbours = space.neighbours(genotype, 8, rng)
        assert neighbours.shape == (8, space.num_genes)
        assert any(not np.array_equal(n, genotype) for n in neighbours)
        for neighbour in neighbours:
            assert space.is_valid(neighbour)

    def test_features_live_in_unit_cube(self, space):
        features = space.to_features(space.sample(ensure_rng(3)))
        assert features.shape == (space.num_genes,)
        assert np.all(features >= 0.0) and np.all(features <= 1.0)

    def test_decode_both_shapes(self, space):
        genotype = space.sample(ensure_rng(11))
        accuracy = space.decode_for_accuracy(genotype)
        performance = space.decode_for_performance(genotype)
        assert accuracy.input_shape == tuple(space.accuracy_input_shape)
        assert performance.input_shape == tuple(space.performance_input_shape)
        accuracy.summarize()
        performance.summarize()

    def test_candidate_name_is_deterministic_and_prefixed(self, space):
        genotype = space.sample(ensure_rng(5))
        name = space.candidate_name(genotype)
        assert name == space.candidate_name(genotype)
        prefix = "lens" if space.space_name == "lens-vgg" else space.space_name
        assert name.startswith(prefix)

    def test_partition_graph_matches_decoded_architecture(self, space):
        genotype = space.sample(ensure_rng(9))
        architecture = space.decode_for_performance(genotype)
        graph = space.partition_graph(architecture)
        assert graph.num_layers == len(architecture.layers)
        assert graph.skip_edges == architecture.skip_edges

    def test_describe_mentions_the_space(self, space):
        assert space.describe()


class TestResNetSpace:
    @pytest.fixture
    def space(self):
        return ResNetSearchSpace()

    def test_decoded_blocks_carry_skip_edges(self, space):
        genotype = space.sample(ensure_rng(0))
        values = space.encoding.values(genotype)
        expected_blocks = sum(
            int(values[f"stage{s}_blocks"]) for s in range(1, space.num_stages + 1)
        )
        architecture = space.decode_for_performance(genotype)
        assert len(architecture.skip_edges) == expected_blocks

    def test_skip_edges_join_identical_shapes(self, space):
        architecture = space.decode_for_performance(space.sample(ensure_rng(1)))
        summaries = architecture.summarize()
        for src, dst in architecture.skip_edges:
            assert summaries[src].output_shape == summaries[dst].output_shape

    def test_every_block_interior_is_uncuttable(self, space):
        architecture = space.decode_for_performance(space.sample(ensure_rng(2)))
        graph = architecture.partition_graph()
        for src, dst in architecture.skip_edges:
            for boundary in range(src + 1, dst):
                assert not graph.allows_cut_after(boundary)
            # the block's entry boundary transmits the skip tensor itself
            assert graph.allows_cut_after(src)

    def test_all_genotypes_are_valid(self, space):
        rng = ensure_rng(3)
        for _ in range(20):
            assert space.is_valid(space.encoding.sample_indices(rng))

    def test_round_trip_configuration(self, space):
        clone = ResNetSearchSpace.from_dict(space.to_dict())
        assert clone.to_dict() == space.to_dict()
        genotype = space.sample(ensure_rng(4))
        assert clone.decode(genotype) == space.decode(genotype)


class TestResNetVariants:
    def test_downsample_style_is_validated(self):
        with pytest.raises(ValueError, match="downsample"):
            ResNetSearchSpace(downsample="avgpool")

    def test_defaults_decode_identically_to_the_plain_space(self):
        """The new knobs at their defaults must not move decoded models."""
        plain = ResNetSearchSpace()
        explicit = ResNetSearchSpace(downsample="pool", projection_shortcuts=False)
        genotype = plain.sample(ensure_rng(5))
        assert explicit.decode(genotype) == plain.decode(genotype)

    def test_stride_downsampling_replaces_pool_and_transition(self):
        space = ResNetSearchSpace(downsample="stride")
        architecture = space.decode_for_performance(space.sample(ensure_rng(6)))
        names = [layer.name for layer in architecture.layers]
        assert any(name.endswith("_downsample") for name in names)
        assert not any(name.endswith("_pool") for name in names)
        assert not any(name.endswith("_transition") for name in names)
        # the strided convolutions still halve the spatial size each stage
        summaries = architecture.summarize()
        downsamples = [
            i for i, layer in enumerate(architecture.layers)
            if layer.name.endswith("_downsample")
        ]
        for index in downsamples:
            before = summaries[index - 1].output_shape
            after = summaries[index].output_shape
            assert after[1] == -(-before[1] // 2)  # ceil(h / 2)

    def test_stride_blocks_still_join_identical_shapes(self):
        space = ResNetSearchSpace(downsample="stride")
        architecture = space.decode_for_performance(space.sample(ensure_rng(7)))
        summaries = architecture.summarize()
        for src, dst in architecture.skip_edges:
            assert summaries[src].output_shape == summaries[dst].output_shape

    def test_projection_shortcuts_span_the_downsampling_layers(self):
        space = ResNetSearchSpace(projection_shortcuts=True)
        architecture = space.decode_for_performance(space.sample(ensure_rng(8)))
        pools = [
            i for i, layer in enumerate(architecture.layers)
            if layer.name.endswith("_pool")
        ]
        # each stage's first skip edge starts before its pool layer
        spanning = [
            (src, dst)
            for src, dst in architecture.skip_edges
            if any(src < pool < dst for pool in pools)
        ]
        assert len(spanning) == space.num_stages

    def test_projection_shortcuts_block_stage_boundary_cuts(self):
        identity = ResNetSearchSpace()
        projection = ResNetSearchSpace(projection_shortcuts=True)
        genotype = identity.sample(ensure_rng(9))
        id_graph = identity.decode_for_performance(genotype).partition_graph()
        proj_arch = projection.decode_for_performance(genotype)
        proj_graph = proj_arch.partition_graph()
        pools = [
            i for i, layer in enumerate(proj_arch.layers)
            if layer.name.endswith("_pool")
        ]
        for pool in pools:
            # the projection edge spans pool + transition, so cutting right
            # after either is illegal — with identity shortcuts both are fine
            assert id_graph.allows_cut_after(pool)
            assert not proj_graph.allows_cut_after(pool)
            assert id_graph.allows_cut_after(pool + 1)
            assert not proj_graph.allows_cut_after(pool + 1)
            # the stage input boundary itself stays legal: the cut tensor
            # there IS the shortcut tensor
            assert proj_graph.allows_cut_after(pool - 1)
        assert len(proj_graph.legal_cut_indices()) < len(
            id_graph.legal_cut_indices()
        )

    @pytest.mark.parametrize("downsample", ["pool", "stride"])
    def test_projection_shortcut_architectures_summarize(self, downsample):
        """Projection edges join shapes across a downsampling: shape
        inference must accept them (a strided 1x1 projection reconciles the
        merge) rather than reject the whole architecture — the crash class
        that only surfaced once a search actually evaluated a candidate."""
        space = ResNetSearchSpace(
            downsample=downsample, projection_shortcuts=True
        )
        rng = ensure_rng(10)
        for _ in range(5):
            architecture = space.decode_for_performance(space.sample(rng))
            summaries = architecture.summarize()
            for src, dst in architecture.skip_edges:
                src_shape = summaries[src].output_shape
                dst_shape = summaries[dst].output_shape
                if src_shape == dst_shape:
                    continue
                # spanning edges shrink every spatial dim by exactly 2x
                assert all(
                    -(-s // 2) == d
                    for s, d in zip(src_shape[1:], dst_shape[1:])
                ), (src_shape, dst_shape)

    def test_projection_shortcut_search_runs_end_to_end(self):
        from repro.api import EvaluationEngine, run_search

        space = ResNetSearchSpace(
            downsample="stride", projection_shortcuts=True
        )
        outcome = run_search(
            strategy="lens",
            scenario="wifi-3mbps/jetson-tx2-gpu",
            search_space=space,
            engine=EvaluationEngine(),
            num_initial=4,
            num_iterations=2,
            candidate_pool_size=8,
            predictor_samples_per_type=40,
            seed=3,
        )
        assert outcome.candidates
        for candidate in outcome.candidates:
            graph = space.decode_for_performance(
                candidate.genotype
            ).partition_graph()
            for option in (
                candidate.best_latency_option,
                candidate.best_energy_option,
            ):
                if option.split_index is not None:  # None = no-split option
                    assert graph.allows_cut_after(option.split_index)


class TestSeqConv1DSpace:
    @pytest.fixture
    def space(self):
        return SeqConv1DSearchSpace()

    def test_decodes_to_1d_layers(self, space):
        architecture = space.decode_for_performance(space.sample(ensure_rng(0)))
        types = {s.layer_type for s in architecture.summarize()}
        assert "conv1d" in types
        assert "pool1d" in types
        assert "conv" not in types

    def test_pool_constraint_enforced(self, space):
        rng = ensure_rng(1)
        invalid = np.zeros(space.num_genes, dtype=int)  # every pool gene off
        assert not space.is_valid(invalid)
        repaired = space.repair(invalid, rng)
        assert space.is_valid(repaired)
        with pytest.raises(ValueError, match="constraints"):
            space.decode(invalid)

    def test_performance_model_has_partition_points(self, space):
        # the streaming window must shrink below the 96 kB input eventually
        architecture = space.decode_for_performance(space.sample(ensure_rng(2)))
        summaries = architecture.summarize()
        input_bytes = architecture.input_bytes
        assert any(
            s.output_bytes < input_bytes for s in summaries[:-1]
            if s.is_partition_candidate
        )

    def test_round_trip_configuration(self, space):
        clone = SeqConv1DSearchSpace.from_dict(space.to_dict())
        assert clone.to_dict() == space.to_dict()
        genotype = space.sample(ensure_rng(4))
        assert clone.decode(genotype) == space.decode(genotype)
