"""The pluggable search-space protocol and the three registered spaces."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.registry import SEARCH_SPACES, RegistryError, register_search_space
from repro.nn.resnet_space import ResNetSearchSpace
from repro.nn.search_space import LensSearchSpace
from repro.nn.seq_space import SeqConv1DSearchSpace
from repro.nn.spaces import DEFAULT_SEARCH_SPACE, EncodedSearchSpace, SearchSpace
from repro.utils.rng import ensure_rng

BUILTIN_SPACES = ("lens-vgg", "resnet-v1", "seq-conv1d")


class TestRegistry:
    def test_builtin_spaces_are_registered(self):
        assert set(SEARCH_SPACES.names()) == set(BUILTIN_SPACES)
        assert DEFAULT_SEARCH_SPACE == "lens-vgg"

    def test_create_returns_fresh_instances(self):
        first = SEARCH_SPACES.create("resnet-v1")
        second = SEARCH_SPACES.create("resnet-v1")
        assert isinstance(first, ResNetSearchSpace)
        assert first is not second

    def test_space_name_matches_registry_key(self):
        for name in BUILTIN_SPACES:
            assert SEARCH_SPACES.create(name).space_name == name

    def test_unknown_space_suggests_close_match(self):
        with pytest.raises(RegistryError, match="Did you mean 'resnet-v1'"):
            SEARCH_SPACES.get("resnet-v2")

    def test_register_custom_space(self):
        class TinySpace(LensSearchSpace):
            space_name = "tiny-vgg"

        register_search_space(
            "tiny-vgg", lambda: TinySpace(num_blocks=4, min_pool_layers=2)
        )
        try:
            assert "tiny-vgg" in SEARCH_SPACES
            space = SEARCH_SPACES.create("tiny-vgg")
            assert space.num_blocks == 4
        finally:
            SEARCH_SPACES.unregister("tiny-vgg")


class TestProtocolConformance:
    """Every built-in space honours the full SearchSpace contract."""

    @pytest.fixture(params=BUILTIN_SPACES)
    def space(self, request):
        return SEARCH_SPACES.create(request.param)

    def test_is_search_space(self, space):
        assert isinstance(space, SearchSpace)
        assert isinstance(space, EncodedSearchSpace)

    def test_sample_is_valid_and_deterministic(self, space):
        a = space.sample(ensure_rng(42))
        b = space.sample(ensure_rng(42))
        assert np.array_equal(a, b)
        assert space.is_valid(a)
        assert a.shape == (space.num_genes,)

    def test_sample_batch_shape(self, space):
        batch = space.sample_batch(5, ensure_rng(0))
        assert batch.shape == (5, space.num_genes)
        for genotype in batch:
            assert space.is_valid(genotype)

    def test_neighbours_are_valid_and_differ(self, space):
        rng = ensure_rng(7)
        genotype = space.sample(rng)
        neighbours = space.neighbours(genotype, 8, rng)
        assert neighbours.shape == (8, space.num_genes)
        assert any(not np.array_equal(n, genotype) for n in neighbours)
        for neighbour in neighbours:
            assert space.is_valid(neighbour)

    def test_features_live_in_unit_cube(self, space):
        features = space.to_features(space.sample(ensure_rng(3)))
        assert features.shape == (space.num_genes,)
        assert np.all(features >= 0.0) and np.all(features <= 1.0)

    def test_decode_both_shapes(self, space):
        genotype = space.sample(ensure_rng(11))
        accuracy = space.decode_for_accuracy(genotype)
        performance = space.decode_for_performance(genotype)
        assert accuracy.input_shape == tuple(space.accuracy_input_shape)
        assert performance.input_shape == tuple(space.performance_input_shape)
        accuracy.summarize()
        performance.summarize()

    def test_candidate_name_is_deterministic_and_prefixed(self, space):
        genotype = space.sample(ensure_rng(5))
        name = space.candidate_name(genotype)
        assert name == space.candidate_name(genotype)
        prefix = "lens" if space.space_name == "lens-vgg" else space.space_name
        assert name.startswith(prefix)

    def test_partition_graph_matches_decoded_architecture(self, space):
        genotype = space.sample(ensure_rng(9))
        architecture = space.decode_for_performance(genotype)
        graph = space.partition_graph(architecture)
        assert graph.num_layers == len(architecture.layers)
        assert graph.skip_edges == architecture.skip_edges

    def test_describe_mentions_the_space(self, space):
        assert space.describe()


class TestResNetSpace:
    @pytest.fixture
    def space(self):
        return ResNetSearchSpace()

    def test_decoded_blocks_carry_skip_edges(self, space):
        genotype = space.sample(ensure_rng(0))
        values = space.encoding.values(genotype)
        expected_blocks = sum(
            int(values[f"stage{s}_blocks"]) for s in range(1, space.num_stages + 1)
        )
        architecture = space.decode_for_performance(genotype)
        assert len(architecture.skip_edges) == expected_blocks

    def test_skip_edges_join_identical_shapes(self, space):
        architecture = space.decode_for_performance(space.sample(ensure_rng(1)))
        summaries = architecture.summarize()
        for src, dst in architecture.skip_edges:
            assert summaries[src].output_shape == summaries[dst].output_shape

    def test_every_block_interior_is_uncuttable(self, space):
        architecture = space.decode_for_performance(space.sample(ensure_rng(2)))
        graph = architecture.partition_graph()
        for src, dst in architecture.skip_edges:
            for boundary in range(src + 1, dst):
                assert not graph.allows_cut_after(boundary)
            # the block's entry boundary transmits the skip tensor itself
            assert graph.allows_cut_after(src)

    def test_all_genotypes_are_valid(self, space):
        rng = ensure_rng(3)
        for _ in range(20):
            assert space.is_valid(space.encoding.sample_indices(rng))

    def test_round_trip_configuration(self, space):
        clone = ResNetSearchSpace.from_dict(space.to_dict())
        assert clone.to_dict() == space.to_dict()
        genotype = space.sample(ensure_rng(4))
        assert clone.decode(genotype) == space.decode(genotype)


class TestSeqConv1DSpace:
    @pytest.fixture
    def space(self):
        return SeqConv1DSearchSpace()

    def test_decodes_to_1d_layers(self, space):
        architecture = space.decode_for_performance(space.sample(ensure_rng(0)))
        types = {s.layer_type for s in architecture.summarize()}
        assert "conv1d" in types
        assert "pool1d" in types
        assert "conv" not in types

    def test_pool_constraint_enforced(self, space):
        rng = ensure_rng(1)
        invalid = np.zeros(space.num_genes, dtype=int)  # every pool gene off
        assert not space.is_valid(invalid)
        repaired = space.repair(invalid, rng)
        assert space.is_valid(repaired)
        with pytest.raises(ValueError, match="constraints"):
            space.decode(invalid)

    def test_performance_model_has_partition_points(self, space):
        # the streaming window must shrink below the 96 kB input eventually
        architecture = space.decode_for_performance(space.sample(ensure_rng(2)))
        summaries = architecture.summarize()
        input_bytes = architecture.input_bytes
        assert any(
            s.output_bytes < input_bytes for s in summaries[:-1]
            if s.is_partition_candidate
        )

    def test_round_trip_configuration(self, space):
        clone = SeqConv1DSearchSpace.from_dict(space.to_dict())
        assert clone.to_dict() == space.to_dict()
        genotype = space.sample(ensure_rng(4))
        assert clone.decode(genotype) == space.decode(genotype)
