"""Tests for Pareto utilities, archives and quality indicators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optim.pareto import (
    FrontHistory,
    ParetoArchive,
    _pareto_front_mask_reference,
    combined_front_composition,
    compute_front_history,
    coverage,
    default_reference_point,
    dominates,
    hypervolume,
    hypervolume_2d,
    hypervolume_3d,
    non_dominated_sort,
    pareto_front_indices,
    pareto_front_mask,
)


def _monte_carlo_hypervolume(points, reference, num_samples=40000, seed=0):
    """Plain MC estimate, independent of the library's implementations."""
    rng = np.random.default_rng(seed)
    reference = np.asarray(reference, dtype=float)
    ideal = np.asarray(points, dtype=float).min(axis=0)
    box = np.prod(reference - ideal)
    samples = rng.uniform(ideal, reference, size=(num_samples, reference.size))
    dominated = np.zeros(num_samples, dtype=bool)
    for point in np.asarray(points, dtype=float):
        dominated |= np.all(point <= samples, axis=1)
    return box * dominated.mean()


class TestDominance:
    def test_strict_dominance(self):
        assert dominates([1.0, 2.0], [2.0, 3.0])
        assert dominates([1.0, 2.0], [1.0, 3.0])

    def test_no_dominance_between_trade_offs(self):
        assert not dominates([1.0, 5.0], [2.0, 3.0])
        assert not dominates([2.0, 3.0], [1.0, 5.0])

    def test_identical_points_do_not_dominate(self):
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates([1.0], [1.0, 2.0])


class TestFrontMask:
    def test_simple_front(self):
        Y = np.array([[1, 5], [2, 2], [5, 1], [4, 4], [3, 3]])
        mask = pareto_front_mask(Y)
        assert list(mask) == [True, True, True, False, False]
        assert list(pareto_front_indices(Y)) == [0, 1, 2]

    def test_duplicates_are_kept(self):
        Y = np.array([[1, 1], [1, 1], [2, 2]])
        assert list(pareto_front_mask(Y)) == [True, True, False]

    def test_single_point(self):
        assert list(pareto_front_mask(np.array([[3.0, 4.0]]))) == [True]

    def test_non_dominated_sort_layers(self):
        Y = np.array([[1, 4], [4, 1], [2, 5], [5, 2], [6, 6]])
        fronts = non_dominated_sort(Y)
        assert set(fronts[0]) == {0, 1}
        assert set(fronts[1]) == {2, 3}
        assert set(fronts[2]) == {4}

    def test_empty_matrix(self):
        assert pareto_front_mask(np.empty((0, 3))).shape == (0,)

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_equivalence_with_reference(self, seed):
        """The sort/block implementation must agree with the O(n^2) loop exactly."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 300))
        k = int(rng.integers(1, 5))
        Y = rng.uniform(size=(n, k))
        assert np.array_equal(pareto_front_mask(Y), _pareto_front_mask_reference(Y))

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_equivalence_with_ties_and_duplicates(self, seed):
        """Quantised objectives force ties/duplicates; semantics must still match."""
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 200))
        Y = np.round(rng.uniform(size=(n, 3)) * 4) / 4
        duplicated = np.vstack([Y, Y[rng.integers(0, n, size=n // 2)]])
        assert np.array_equal(
            pareto_front_mask(duplicated), _pareto_front_mask_reference(duplicated)
        )

    def test_duplicates_of_front_points_all_survive_at_scale(self):
        rng = np.random.default_rng(0)
        Y = rng.uniform(size=(500, 2))
        mask = pareto_front_mask(Y)
        tripled = np.vstack([Y, Y[mask], Y[mask]])
        tripled_mask = pareto_front_mask(tripled)
        assert tripled_mask.sum() == 3 * mask.sum()

    def test_all_identical_rows(self):
        Y = np.ones((6, 3))
        assert pareto_front_mask(Y).all()

    def test_nan_rows_do_not_destroy_finite_front(self):
        """NaN objectives keep the loop-implementation semantics."""
        Y = np.array([[0.5, 0.5], [np.nan, 0.1], [0.2, 0.9], [0.6, 0.6]])
        assert np.array_equal(pareto_front_mask(Y), _pareto_front_mask_reference(Y))
        assert list(pareto_front_mask(Y)[:3]) == [True, True, True]


class TestArchive:
    def test_insertion_maintains_non_domination(self):
        archive = ParetoArchive(2)
        assert archive.add("a", [2.0, 2.0])
        assert archive.add("b", [1.0, 3.0])
        assert not archive.add("c", [3.0, 3.0])  # dominated by "a"
        assert archive.add("d", [1.5, 1.5])      # dominates "a", coexists with "b"
        assert len(archive) == 2
        assert set(archive.payloads) == {"b", "d"}
        assert archive.add("e", [0.5, 0.5])      # dominates everything left
        assert len(archive) == 1
        assert archive.payloads == ["e"]

    def test_dimension_validation(self):
        archive = ParetoArchive(2)
        with pytest.raises(ValueError):
            archive.add("x", [1.0])
        with pytest.raises(ValueError):
            ParetoArchive(0)

    def test_update_many_counts_accepted(self):
        archive = ParetoArchive(2)
        accepted = archive.update_many(
            [("a", [1, 2]), ("b", [2, 1]), ("c", [3, 3])]
        )
        assert accepted == 2

    def test_objective_matrix_and_to_dict(self):
        archive = ParetoArchive(2)
        archive.add("a", [1.0, 2.0])
        archive.add("b", [2.0, 1.0])
        assert archive.objective_matrix().shape == (2, 2)
        data = archive.to_dict()
        assert data["num_objectives"] == 2
        assert len(data["entries"]) == 2

    def test_empty_archive_matrix_shape(self):
        assert ParetoArchive(3).objective_matrix().shape == (0, 3)


class TestIndicators:
    def test_coverage_metric(self):
        A = np.array([[1.0, 1.0]])
        B = np.array([[2.0, 2.0], [0.5, 3.0], [3.0, 0.5]])
        assert coverage(A, B) == pytest.approx(1 / 3)
        assert coverage(B, A) == 0.0
        assert coverage(np.empty((0, 2)), B) == 0.0
        assert coverage(A, np.empty((0, 2))) == 0.0

    def test_combined_front_composition(self):
        A = np.array([[1.0, 4.0], [2.0, 2.0]])
        B = np.array([[4.0, 1.0], [3.0, 3.0]])
        composition = combined_front_composition(A, B)
        # Joint front: (1,4), (2,2), (4,1) -> 2 from A, 1 from B.
        assert composition["combined_size"] == 3
        assert composition["fraction_a"] == pytest.approx(2 / 3)
        assert composition["fraction_b"] == pytest.approx(1 / 3)

    def test_combined_front_with_empty_inputs(self):
        A = np.array([[1.0, 1.0]])
        empty = np.empty((0, 2))
        assert combined_front_composition(A, empty)["fraction_a"] == 1.0
        assert combined_front_composition(empty, A)["fraction_b"] == 1.0
        assert combined_front_composition(empty, empty)["combined_size"] == 0.0

    def test_hypervolume_2d_rectangle(self):
        points = np.array([[1.0, 1.0]])
        assert hypervolume_2d(points, [2.0, 2.0]) == pytest.approx(1.0)

    def test_hypervolume_2d_staircase(self):
        points = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        # Union of rectangles to reference (4, 4): 3x1 + 2x1 + 1x1.
        assert hypervolume_2d(points, [4.0, 4.0]) == pytest.approx(6.0)

    def test_hypervolume_ignores_points_outside_reference(self):
        points = np.array([[5.0, 5.0]])
        assert hypervolume_2d(points, [2.0, 2.0]) == 0.0

    def test_hypervolume_monte_carlo_close_to_exact_for_3d_box(self):
        points = np.array([[0.0, 0.0, 0.0]])
        estimate = hypervolume(points, [1.0, 1.0, 1.0], num_samples=5000, seed=0)
        assert estimate == pytest.approx(1.0, rel=0.05)

    def test_hypervolume_dimension_check(self):
        with pytest.raises(ValueError):
            hypervolume(np.array([[1.0, 2.0]]), [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            hypervolume_2d(np.array([[1.0, 2.0, 3.0]]), [1.0, 2.0, 3.0])

    def test_hypervolume_4d_still_uses_monte_carlo(self):
        points = np.zeros((1, 4))
        estimate = hypervolume(points, [1.0] * 4, num_samples=5000, seed=0)
        assert estimate == pytest.approx(1.0, rel=0.05)


class TestHypervolume3D:
    def test_single_box(self):
        assert hypervolume_3d(np.array([[0.0, 0.0, 0.0]]), [2.0, 3.0, 4.0]) == (
            pytest.approx(24.0)
        )

    def test_two_disjoint_boxes(self):
        # Boxes to (2, 2, 2): point a covers [1,2]^3 (vol 1); point b covers
        # [0,2]x[1.5,2]x[1.5,2] (vol 0.5); overlap [1,2]x[1.5,2]x[1.5,2] = 0.25.
        points = np.array([[1.0, 1.0, 1.0], [0.0, 1.5, 1.5]])
        assert hypervolume_3d(points, [2.0, 2.0, 2.0]) == pytest.approx(1.25)

    def test_dominated_points_add_nothing(self):
        front = np.array([[0.0, 0.0, 0.0]])
        padded = np.vstack([front, [[0.5, 0.5, 0.5], [0.9, 0.1, 0.3]]])
        reference = [1.0, 1.0, 1.0]
        assert hypervolume_3d(padded, reference) == pytest.approx(
            hypervolume_3d(front, reference)
        )

    def test_duplicate_points_add_nothing(self):
        points = np.array([[0.2, 0.4, 0.1], [0.6, 0.1, 0.5]])
        doubled = np.vstack([points, points, points])
        reference = [1.0, 1.0, 1.0]
        assert hypervolume_3d(doubled, reference) == pytest.approx(
            hypervolume_3d(points, reference)
        )

    def test_point_on_reference_boundary_contributes_zero(self):
        assert hypervolume_3d(np.array([[1.0, 1.0, 1.0]]), [1.0, 1.0, 1.0]) == 0.0
        # One coordinate at the boundary: zero thickness in that dimension.
        assert hypervolume_3d(np.array([[0.0, 0.0, 1.0]]), [1.0, 1.0, 1.0]) == 0.0

    def test_all_points_outside_reference(self):
        points = np.array([[2.0, 0.1, 0.1], [0.1, 3.0, 0.1], [0.1, 0.1, 1.5]])
        assert hypervolume_3d(points, [1.0, 1.0, 1.0]) == 0.0

    def test_shared_z_slab_matches_2d_times_height(self):
        """Points with one common z reduce to a 2-D staircase times a height."""
        staircase = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        z = 0.5
        points = np.column_stack([staircase, np.full(len(staircase), z)])
        reference = [4.0, 4.0, 2.0]
        expected = hypervolume_2d(staircase, reference[:2]) * (reference[2] - z)
        assert hypervolume_3d(points, reference) == pytest.approx(expected)

    def test_dispatch_through_hypervolume(self):
        points = np.array([[0.1, 0.7, 0.3], [0.5, 0.2, 0.6]])
        reference = [1.0, 1.0, 1.0]
        assert hypervolume(points, reference) == pytest.approx(
            hypervolume_3d(points, reference)
        )

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            hypervolume_3d(np.array([[1.0, 2.0]]), [1.0, 2.0])
        with pytest.raises(ValueError):
            hypervolume_3d(np.array([[1.0, 2.0, 3.0]]), [1.0, 2.0])

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_monte_carlo_on_random_fronts(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 40))
        points = rng.uniform(0.0, 1.0, size=(n, 3))
        reference = [1.1, 1.1, 1.1]
        exact = hypervolume_3d(points, reference)
        estimate = _monte_carlo_hypervolume(
            points, reference, num_samples=60000, seed=seed
        )
        assert exact == pytest.approx(estimate, abs=0.03)


class TestSortAndArchiveEdgeCases:
    def test_non_dominated_sort_empty(self):
        assert non_dominated_sort(np.empty((0, 2))) == []

    def test_non_dominated_sort_single_point(self):
        fronts = non_dominated_sort(np.array([[1.0, 2.0]]))
        assert len(fronts) == 1
        assert list(fronts[0]) == [0]

    def test_non_dominated_sort_totally_ordered_chain(self):
        """Each point dominates the next: n singleton fronts."""
        Y = np.array([[i, i] for i in range(5)], dtype=float)
        fronts = non_dominated_sort(Y)
        assert [list(front) for front in fronts] == [[0], [1], [2], [3], [4]]

    def test_empty_archive_views(self):
        archive = ParetoArchive(2)
        assert len(archive) == 0
        assert list(archive) == []
        assert archive.payloads == []
        assert archive.entries == ()
        assert archive.to_dict()["entries"] == []

    def test_single_point_archive(self):
        archive = ParetoArchive(3)
        assert archive.add("only", [1.0, 2.0, 3.0])
        assert len(archive) == 1
        assert archive.objective_matrix().shape == (1, 3)

    def test_all_dominated_pool_rejected(self):
        archive = ParetoArchive(2)
        archive.add("best", [0.0, 0.0])
        accepted = archive.update_many(
            (f"p{i}", [float(i + 1), float(i + 1)]) for i in range(10)
        )
        assert accepted == 0
        assert archive.payloads == ["best"]


class TestFrontHistory:
    def test_hypervolume_is_monotone_and_front_sizes_consistent(self, rng):
        Y = rng.uniform(size=(30, 3))
        history = compute_front_history(Y, ("a", "b", "c"))
        assert len(history) == 30
        volumes = history.hypervolumes()
        assert np.all(np.diff(volumes) >= -1e-12)
        assert history.final_hypervolume == pytest.approx(volumes[-1])
        # entry t describes the front over the first t+1 evaluations
        for t, entry in enumerate(history.entries):
            mask = pareto_front_mask(Y[: t + 1])
            assert entry.front_size == mask.sum()
            assert entry.joined_front == bool(mask[t])

    def test_first_evaluation_always_joins_the_front(self, rng):
        history = compute_front_history(rng.uniform(size=(5, 2)))
        assert history.entries[0].joined_front
        assert history.entries[0].front_size == 1

    def test_default_reference_point_encloses_all_observations(self, rng):
        Y = rng.uniform(10.0, 500.0, size=(40, 3))
        reference = default_reference_point(Y)
        assert np.all(Y < reference)

    def test_round_trip(self, rng):
        Y = rng.uniform(size=(12, 3))
        history = compute_front_history(
            Y,
            ("error_percent", "latency_s", "energy_j"),
            labels=[f"m{i}" for i in range(12)],
            iterations=list(range(12)),
        )
        clone = FrontHistory.from_dict(history.to_dict())
        assert clone == history

    def test_empty_sequence(self):
        history = compute_front_history(np.empty((0, 3)), ("a", "b", "c"))
        assert len(history) == 0
        assert history.final_hypervolume == 0.0
        assert history.final_front_size == 0
        assert history.front_advances() == []

    def test_reference_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            compute_front_history(rng.uniform(size=(4, 3)), reference=[1.0, 1.0])


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=10, allow_nan=False),
            st.floats(min_value=0, max_value=10, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_front_members_are_mutually_non_dominated(points):
    Y = np.array(points)
    front = Y[pareto_front_mask(Y)]
    assert front.shape[0] >= 1
    for i in range(front.shape[0]):
        for j in range(front.shape[0]):
            if i != j:
                assert not dominates(front[i], front[j])
    # Every dropped point is dominated by some front member.
    dropped = Y[~pareto_front_mask(Y)]
    for point in dropped:
        assert any(dominates(f, point) for f in front)
