"""Tests for Pareto utilities, archives and quality indicators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optim.pareto import (
    ParetoArchive,
    _pareto_front_mask_reference,
    combined_front_composition,
    coverage,
    dominates,
    hypervolume,
    hypervolume_2d,
    non_dominated_sort,
    pareto_front_indices,
    pareto_front_mask,
)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates([1.0, 2.0], [2.0, 3.0])
        assert dominates([1.0, 2.0], [1.0, 3.0])

    def test_no_dominance_between_trade_offs(self):
        assert not dominates([1.0, 5.0], [2.0, 3.0])
        assert not dominates([2.0, 3.0], [1.0, 5.0])

    def test_identical_points_do_not_dominate(self):
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates([1.0], [1.0, 2.0])


class TestFrontMask:
    def test_simple_front(self):
        Y = np.array([[1, 5], [2, 2], [5, 1], [4, 4], [3, 3]])
        mask = pareto_front_mask(Y)
        assert list(mask) == [True, True, True, False, False]
        assert list(pareto_front_indices(Y)) == [0, 1, 2]

    def test_duplicates_are_kept(self):
        Y = np.array([[1, 1], [1, 1], [2, 2]])
        assert list(pareto_front_mask(Y)) == [True, True, False]

    def test_single_point(self):
        assert list(pareto_front_mask(np.array([[3.0, 4.0]]))) == [True]

    def test_non_dominated_sort_layers(self):
        Y = np.array([[1, 4], [4, 1], [2, 5], [5, 2], [6, 6]])
        fronts = non_dominated_sort(Y)
        assert set(fronts[0]) == {0, 1}
        assert set(fronts[1]) == {2, 3}
        assert set(fronts[2]) == {4}

    def test_empty_matrix(self):
        assert pareto_front_mask(np.empty((0, 3))).shape == (0,)

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_equivalence_with_reference(self, seed):
        """The sort/block implementation must agree with the O(n^2) loop exactly."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 300))
        k = int(rng.integers(1, 5))
        Y = rng.uniform(size=(n, k))
        assert np.array_equal(pareto_front_mask(Y), _pareto_front_mask_reference(Y))

    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_equivalence_with_ties_and_duplicates(self, seed):
        """Quantised objectives force ties/duplicates; semantics must still match."""
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(2, 200))
        Y = np.round(rng.uniform(size=(n, 3)) * 4) / 4
        duplicated = np.vstack([Y, Y[rng.integers(0, n, size=n // 2)]])
        assert np.array_equal(
            pareto_front_mask(duplicated), _pareto_front_mask_reference(duplicated)
        )

    def test_duplicates_of_front_points_all_survive_at_scale(self):
        rng = np.random.default_rng(0)
        Y = rng.uniform(size=(500, 2))
        mask = pareto_front_mask(Y)
        tripled = np.vstack([Y, Y[mask], Y[mask]])
        tripled_mask = pareto_front_mask(tripled)
        assert tripled_mask.sum() == 3 * mask.sum()

    def test_all_identical_rows(self):
        Y = np.ones((6, 3))
        assert pareto_front_mask(Y).all()

    def test_nan_rows_do_not_destroy_finite_front(self):
        """NaN objectives keep the loop-implementation semantics."""
        Y = np.array([[0.5, 0.5], [np.nan, 0.1], [0.2, 0.9], [0.6, 0.6]])
        assert np.array_equal(pareto_front_mask(Y), _pareto_front_mask_reference(Y))
        assert list(pareto_front_mask(Y)[:3]) == [True, True, True]


class TestArchive:
    def test_insertion_maintains_non_domination(self):
        archive = ParetoArchive(2)
        assert archive.add("a", [2.0, 2.0])
        assert archive.add("b", [1.0, 3.0])
        assert not archive.add("c", [3.0, 3.0])  # dominated by "a"
        assert archive.add("d", [1.5, 1.5])      # dominates "a", coexists with "b"
        assert len(archive) == 2
        assert set(archive.payloads) == {"b", "d"}
        assert archive.add("e", [0.5, 0.5])      # dominates everything left
        assert len(archive) == 1
        assert archive.payloads == ["e"]

    def test_dimension_validation(self):
        archive = ParetoArchive(2)
        with pytest.raises(ValueError):
            archive.add("x", [1.0])
        with pytest.raises(ValueError):
            ParetoArchive(0)

    def test_update_many_counts_accepted(self):
        archive = ParetoArchive(2)
        accepted = archive.update_many(
            [("a", [1, 2]), ("b", [2, 1]), ("c", [3, 3])]
        )
        assert accepted == 2

    def test_objective_matrix_and_to_dict(self):
        archive = ParetoArchive(2)
        archive.add("a", [1.0, 2.0])
        archive.add("b", [2.0, 1.0])
        assert archive.objective_matrix().shape == (2, 2)
        data = archive.to_dict()
        assert data["num_objectives"] == 2
        assert len(data["entries"]) == 2

    def test_empty_archive_matrix_shape(self):
        assert ParetoArchive(3).objective_matrix().shape == (0, 3)


class TestIndicators:
    def test_coverage_metric(self):
        A = np.array([[1.0, 1.0]])
        B = np.array([[2.0, 2.0], [0.5, 3.0], [3.0, 0.5]])
        assert coverage(A, B) == pytest.approx(1 / 3)
        assert coverage(B, A) == 0.0
        assert coverage(np.empty((0, 2)), B) == 0.0
        assert coverage(A, np.empty((0, 2))) == 0.0

    def test_combined_front_composition(self):
        A = np.array([[1.0, 4.0], [2.0, 2.0]])
        B = np.array([[4.0, 1.0], [3.0, 3.0]])
        composition = combined_front_composition(A, B)
        # Joint front: (1,4), (2,2), (4,1) -> 2 from A, 1 from B.
        assert composition["combined_size"] == 3
        assert composition["fraction_a"] == pytest.approx(2 / 3)
        assert composition["fraction_b"] == pytest.approx(1 / 3)

    def test_combined_front_with_empty_inputs(self):
        A = np.array([[1.0, 1.0]])
        empty = np.empty((0, 2))
        assert combined_front_composition(A, empty)["fraction_a"] == 1.0
        assert combined_front_composition(empty, A)["fraction_b"] == 1.0
        assert combined_front_composition(empty, empty)["combined_size"] == 0.0

    def test_hypervolume_2d_rectangle(self):
        points = np.array([[1.0, 1.0]])
        assert hypervolume_2d(points, [2.0, 2.0]) == pytest.approx(1.0)

    def test_hypervolume_2d_staircase(self):
        points = np.array([[1.0, 3.0], [2.0, 2.0], [3.0, 1.0]])
        # Union of rectangles to reference (4, 4): 3x1 + 2x1 + 1x1.
        assert hypervolume_2d(points, [4.0, 4.0]) == pytest.approx(6.0)

    def test_hypervolume_ignores_points_outside_reference(self):
        points = np.array([[5.0, 5.0]])
        assert hypervolume_2d(points, [2.0, 2.0]) == 0.0

    def test_hypervolume_monte_carlo_close_to_exact_for_3d_box(self):
        points = np.array([[0.0, 0.0, 0.0]])
        estimate = hypervolume(points, [1.0, 1.0, 1.0], num_samples=5000, seed=0)
        assert estimate == pytest.approx(1.0, rel=0.05)

    def test_hypervolume_dimension_check(self):
        with pytest.raises(ValueError):
            hypervolume(np.array([[1.0, 2.0]]), [1.0, 2.0, 3.0])
        with pytest.raises(ValueError):
            hypervolume_2d(np.array([[1.0, 2.0, 3.0]]), [1.0, 2.0, 3.0])


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=10, allow_nan=False),
            st.floats(min_value=0, max_value=10, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_property_front_members_are_mutually_non_dominated(points):
    Y = np.array(points)
    front = Y[pareto_front_mask(Y)]
    assert front.shape[0] >= 1
    for i in range(front.shape[0]):
        for j in range(front.shape[0]):
            if i != j:
                assert not dominates(front[i], front[j])
    # Every dropped point is dominated by some front member.
    dropped = Y[~pareto_front_mask(Y)]
    for point in dropped:
        assert any(dominates(f, point) for f in front)
