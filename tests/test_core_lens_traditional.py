"""Tests for the LENS search, the Traditional baseline and their comparison."""

import numpy as np
import pytest

from repro.analysis.pareto_metrics import compare_fronts
from repro.core.lens import LensConfig, LensSearch
from repro.core.traditional import TraditionalSearch
from repro.hardware.device import jetson_tx2_cpu


@pytest.fixture(scope="module")
def fast_config():
    return LensConfig(
        wireless_technology="wifi",
        expected_uplink_mbps=3.0,
        num_initial=5,
        num_iterations=8,
        candidate_pool_size=32,
        predictor_samples_per_type=60,
        seed=0,
    )


@pytest.fixture(scope="module")
def lens_search(small_search_space_module, fast_config):
    return LensSearch(search_space=small_search_space_module, config=fast_config)


@pytest.fixture(scope="module")
def small_search_space_module():
    from repro.nn.search_space import LensSearchSpace

    return LensSearchSpace(
        num_blocks=3,
        layers_per_block=(1, 2),
        kernel_sizes=(3, 5),
        filter_counts=(24, 64),
        fc_units=(256, 1024),
        min_pool_layers=2,
    )


@pytest.fixture(scope="module")
def lens_result(lens_search):
    return lens_search.run()


class TestLensConfig:
    def test_device_resolution(self):
        config = LensConfig(device="jetson-tx2-cpu")
        assert config.resolve_device().name == "jetson-tx2-cpu"
        custom = LensConfig(device=jetson_tx2_cpu())
        assert custom.resolve_device().name == "jetson-tx2-cpu"

    def test_channel_construction(self):
        config = LensConfig(wireless_technology="lte", expected_uplink_mbps=7.5, round_trip_s=0.02)
        channel = config.build_channel()
        assert channel.technology == "lte"
        assert channel.uplink_mbps == 7.5
        assert channel.round_trip_s == 0.02


class TestLensSearch:
    def test_budget_is_respected(self, lens_result, fast_config):
        assert len(lens_result) == fast_config.num_initial + fast_config.num_iterations
        assert lens_result.label == "lens"

    def test_candidates_carry_deployment_annotations(self, lens_result):
        for candidate in lens_result:
            assert candidate.best_energy_option.label in {
                "All-Edge",
                "All-Cloud",
            } or candidate.best_energy_option.is_split
            assert candidate.energy_j <= candidate.all_edge_energy_j + 1e-12
            assert candidate.latency_s <= candidate.all_edge_latency_s + 1e-12

    def test_phases_and_iterations_recorded(self, lens_result, fast_config):
        phases = [c.phase for c in lens_result]
        assert phases.count("init") == fast_config.num_initial
        assert phases.count("bo") == fast_config.num_iterations
        iterations = [c.iteration for c in lens_result]
        assert iterations == sorted(iterations)

    def test_pareto_front_is_non_empty(self, lens_result):
        front = lens_result.pareto_candidates(("error_percent", "energy_j"))
        assert len(front) >= 1

    def test_reproducibility_with_same_seed(self, small_search_space_module, fast_config):
        first = LensSearch(search_space=small_search_space_module, config=fast_config)
        second = LensSearch(
            search_space=small_search_space_module,
            config=fast_config,
            predictor=first.predictor,
        )
        a = first.run().objective_matrix(("error_percent", "energy_j"))
        b = second.run().objective_matrix(("error_percent", "energy_j"))
        assert np.allclose(a, b)

    def test_progress_callback_invoked(self, small_search_space_module, fast_config):
        calls = []
        search = LensSearch(
            search_space=small_search_space_module,
            config=fast_config,
            progress_callback=lambda index, evaluation: calls.append(evaluation),
        )
        result = search.run()
        assert len(calls) == len(result)

    def test_raw_result_exposed(self, lens_search, lens_result):
        assert lens_search.raw_result is not None
        assert len(lens_search.raw_result.points) == len(lens_result)


class TestTraditionalSearch:
    @pytest.fixture(scope="class")
    def traditional(self, small_search_space_module, fast_config, lens_search):
        return TraditionalSearch(
            search_space=small_search_space_module,
            config=fast_config,
            predictor=lens_search.predictor,
        )

    @pytest.fixture(scope="class")
    def traditional_result(self, traditional):
        return traditional.run()

    def test_partition_within_is_forced_off(self, traditional):
        assert traditional.config.partition_within is False
        assert traditional.evaluator.partition_within is False

    def test_objectives_are_all_edge_values(self, traditional_result):
        for candidate in traditional_result:
            assert candidate.latency_s == pytest.approx(candidate.all_edge_latency_s)
            assert candidate.energy_j == pytest.approx(candidate.all_edge_energy_j)
        assert traditional_result.label == "traditional"

    def test_post_hoc_partitioning_improves_or_preserves(self, traditional, traditional_result):
        partitioned = traditional.partition_result(traditional_result)
        assert partitioned.label == "traditional+partitioned"
        original_front = {
            c.architecture_name: c
            for c in traditional_result.pareto_candidates(("error_percent", "energy_j"))
        }
        assert len(partitioned) == len(original_front)
        for candidate in partitioned:
            original = original_front[candidate.architecture_name]
            assert candidate.energy_j <= original.energy_j + 1e-12
            assert candidate.latency_s <= original.latency_s + 1e-12
            assert candidate.error_percent == pytest.approx(original.error_percent)
            assert candidate.extras.get("partitioned_after_search") is True

    def test_partition_result_can_cover_all_candidates(self, traditional, traditional_result):
        partitioned = traditional.partition_result(traditional_result, pareto_only=False)
        assert len(partitioned) == len(traditional_result)

    def test_front_comparison_against_lens(self, lens_result, traditional, traditional_result):
        partitioned = traditional.partition_result(traditional_result)
        comparison = compare_fronts(lens_result, partitioned, ("error_percent", "energy_j"))
        assert 0.0 <= comparison.a_dominates_b_fraction <= 1.0
        assert 0.0 <= comparison.combined_fraction_a <= 1.0
        assert comparison.a_front_size >= 1
        assert comparison.hypervolume_a >= 0.0
