"""Tests for the incremental GP path and the shared-Cholesky model bank."""

import numpy as np
import pytest

from repro.optim.acquisition import lcb_scores, mean_scores, thompson_scores
from repro.optim.gp import GaussianProcess, triangular_solve
from repro.optim.gp_bank import GPBank
from repro.optim.kernels import Matern52Kernel, RBFKernel


def _stream(rng, n, d=3):
    X = rng.uniform(size=(n, d))
    y = np.sin(3 * X[:, 0]) + 0.5 * X[:, 1] ** 2 - X[:, 2]
    return X, y


class TestTriangularSolve:
    def test_matches_generic_solver(self, rng):
        A = rng.uniform(size=(6, 6))
        L = np.linalg.cholesky(A @ A.T + 6 * np.eye(6))
        b = rng.uniform(size=6)
        B = rng.uniform(size=(6, 4))
        assert np.allclose(triangular_solve(L, b), np.linalg.solve(L, b))
        assert np.allclose(triangular_solve(L, B), np.linalg.solve(L, B))
        assert np.allclose(triangular_solve(L, b, trans=True), np.linalg.solve(L.T, b))


class TestGaussianProcessExtend:
    @pytest.mark.parametrize("kernel_cls", [Matern52Kernel, RBFKernel])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_extend_equals_full_refit_over_random_streams(self, kernel_cls, seed):
        """Property: growing one-by-one ≡ one cold fit, to 1e-8, at every step."""
        rng = np.random.default_rng(seed)
        d = int(rng.integers(2, 6))
        X, y = _stream(rng, 40, d=d)
        probe = rng.uniform(size=(25, d))

        incremental = GaussianProcess(kernel=kernel_cls(lengthscale=0.4))
        incremental.fit(X[:5], y[:5])
        for i in range(5, 40):
            incremental.extend(X[i : i + 1], y[i : i + 1])
            exact = GaussianProcess(kernel=kernel_cls(lengthscale=0.4))
            exact.fit(X[: i + 1], y[: i + 1])
            mean_inc, std_inc = incremental.predict(probe)
            mean_ref, std_ref = exact.predict(probe)
            assert np.allclose(mean_inc, mean_ref, atol=1e-8)
            assert np.allclose(std_inc, std_ref, atol=1e-8)
            assert np.isclose(
                incremental.log_marginal_likelihood(),
                exact.log_marginal_likelihood(),
                atol=1e-7,
            )

    def test_block_extend_matches_row_by_row(self, rng):
        X, y = _stream(rng, 30)
        probe = rng.uniform(size=(10, 3))
        block = GaussianProcess().fit(X[:10], y[:10]).extend(X[10:], y[10:])
        single = GaussianProcess().fit(X[:10], y[:10])
        for i in range(10, 30):
            single.extend(X[i : i + 1], y[i : i + 1])
        for a, b in zip(block.predict(probe), single.predict(probe)):
            assert np.allclose(a, b, atol=1e-10)

    def test_extend_on_unfitted_model_fits(self, rng):
        X, y = _stream(rng, 8)
        gp = GaussianProcess().extend(X, y)
        assert gp.is_fitted and gp.num_observations == 8

    def test_exact_refit_mode(self, rng):
        X, y = _stream(rng, 20)
        probe = rng.uniform(size=(7, 3))
        fallback = GaussianProcess(update_mode="exact-refit")
        fallback.fit(X[:10], y[:10]).extend(X[10:], y[10:])
        exact = GaussianProcess().fit(X, y)
        for a, b in zip(fallback.predict(probe), exact.predict(probe)):
            assert np.array_equal(a, b)  # literally the same code path

    def test_update_mode_validated(self):
        with pytest.raises(ValueError):
            GaussianProcess(update_mode="sometimes")

    def test_extend_validates_shapes(self, rng):
        X, y = _stream(rng, 10)
        gp = GaussianProcess().fit(X, y)
        with pytest.raises(ValueError):
            gp.extend(np.zeros((2, 5)), np.zeros(2))
        with pytest.raises(ValueError):
            gp.extend(np.zeros((2, 3)), np.zeros(3))
        assert gp.extend(np.zeros((0, 3)), np.zeros(0)) is gp

    def test_set_targets_recomputes_posterior(self, rng):
        X, y = _stream(rng, 15)
        gp = GaussianProcess().fit(X, y)
        other = 2.0 * y + 1.0
        gp.set_targets(other)
        exact = GaussianProcess().fit(X, other)
        probe = rng.uniform(size=(6, 3))
        for a, b in zip(gp.predict(probe), exact.predict(probe)):
            assert np.allclose(a, b, atol=1e-10)
        with pytest.raises(ValueError):
            gp.set_targets(np.zeros(3))

    def test_lengthscale_refresh_after_extend(self, rng):
        """The grid search still works on a model grown incrementally."""
        X, y = _stream(rng, 30)
        gp = GaussianProcess(kernel=Matern52Kernel(lengthscale=0.05))
        gp.fit(X[:20], y[:20]).extend(X[20:], y[20:])
        before = gp.log_marginal_likelihood()
        gp.optimize_lengthscale(candidates=(0.05, 0.3, 0.8))
        assert gp.log_marginal_likelihood() >= before


class TestGPBank:
    def _bank_and_models(self, rng, n=25, k=3, mode="incremental"):
        d = 4
        X = rng.uniform(size=(n, d))
        Y = np.column_stack(
            [np.sin((j + 1) * X[:, 0]) + X[:, min(j, d - 1)] for j in range(k)]
        )
        bank = GPBank(k, kernel=Matern52Kernel(lengthscale=0.5), update_mode=mode)
        bank.fit(X, Y)
        reference = [
            GaussianProcess(kernel=Matern52Kernel(lengthscale=0.5)).fit(X, Y[:, j])
            for j in range(k)
        ]
        return bank, reference, X, Y

    def test_predict_matches_individual_models(self, rng):
        bank, reference, X, _ = self._bank_and_models(rng)
        probe = rng.uniform(size=(12, X.shape[1]))
        mean, std = bank.predict(probe)
        assert mean.shape == std.shape == (12, 3)
        for j, model in enumerate(reference):
            mean_ref, std_ref = model.predict(probe)
            assert np.allclose(mean[:, j], mean_ref, atol=1e-10)
            assert np.allclose(std[:, j], std_ref, atol=1e-10)

    def test_thompson_matches_individual_models_for_same_stream(self, rng):
        bank, reference, X, _ = self._bank_and_models(rng)
        probe = rng.uniform(size=(20, X.shape[1]))
        fast = thompson_scores(bank, probe, rng=np.random.default_rng(5))
        slow = thompson_scores(reference, probe, rng=np.random.default_rng(5))
        assert fast.shape == slow.shape == (20, 3)
        assert np.allclose(fast, slow, atol=1e-7)

    def test_lcb_and_mean_scores_bank_path(self, rng):
        bank, reference, X, _ = self._bank_and_models(rng)
        probe = rng.uniform(size=(9, X.shape[1]))
        assert np.allclose(
            lcb_scores(bank, probe, beta=1.5),
            lcb_scores(reference, probe, beta=1.5),
            atol=1e-10,
        )
        assert np.allclose(
            mean_scores(bank, probe), mean_scores(reference, probe), atol=1e-10
        )

    def test_incremental_update_matches_cold_bank(self, rng):
        d, k = 4, 2
        X = rng.uniform(size=(30, d))
        Y = rng.uniform(size=(30, k))
        probe = rng.uniform(size=(10, d))
        inc = GPBank(k, kernel=Matern52Kernel(lengthscale=0.5))
        cold = GPBank(k, kernel=Matern52Kernel(lengthscale=0.5), update_mode="exact-refit")
        for n in range(5, 31):
            # Rescale targets every step, like the MOBO loop's re-normalisation.
            target = Y[:n] / Y[:n].max(axis=0)
            inc.update(X[:n], target)
            cold.update(X[:n], target)
            for a, b in zip(inc.predict(probe), cold.predict(probe)):
                assert np.allclose(a, b, atol=1e-8)

    def test_refresh_lengthscales_diverges_and_rehomogenises(self, rng):
        bank, _, X, Y = self._bank_and_models(rng)
        assert bank.homogeneous
        best = bank.refresh_lengthscales(candidates=(0.1, 0.5, 1.0))
        assert len(best) == 3 and not bank.homogeneous
        probe = rng.uniform(size=(8, X.shape[1]))
        mean, std = bank.predict(probe)  # heterogeneous fallback path
        assert mean.shape == (8, 3) and np.all(std > 0)
        scores = thompson_scores(bank, probe, rng=rng)
        assert scores.shape == (8, 3)
        # The next full update resets to the shared base kernel.
        bank.update(X, Y)
        assert bank.homogeneous
        for model in bank.models:
            assert model.kernel.lengthscale == bank.base_kernel.lengthscale

    def test_update_with_different_prefix_refits_instead_of_reusing_factor(self, rng):
        """A same-length X with different rows must not reuse the stale factor."""
        d, k = 3, 2
        X1 = rng.uniform(size=(12, d))
        X2 = rng.uniform(size=(12, d))
        Y = rng.uniform(size=(12, k))
        bank = GPBank(k, kernel=Matern52Kernel(lengthscale=0.5))
        bank.update(X1, Y)
        bank.update(X2, Y)  # violates the extends-contract; must cold-refit
        probe = rng.uniform(size=(6, d))
        fresh = GPBank(k, kernel=Matern52Kernel(lengthscale=0.5)).fit(X2, Y)
        for a, b in zip(bank.predict(probe), fresh.predict(probe)):
            assert np.allclose(a, b, atol=1e-10)

    def test_bank_iterates_like_a_model_sequence(self, rng):
        bank, _, _, _ = self._bank_and_models(rng)
        assert len(bank) == 3
        assert all(isinstance(m, GaussianProcess) for m in bank)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            GPBank(0)
        bank = GPBank(2)
        with pytest.raises(RuntimeError):
            bank.predict(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            bank.set_targets(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            bank.refresh_lengthscales()
        with pytest.raises(ValueError):
            bank.fit(np.zeros((4, 2)), np.zeros((4, 3)))
