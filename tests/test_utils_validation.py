"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    require_between,
    require_in,
    require_non_negative,
    require_positive,
    require_shape,
    require_type,
)


def test_require_positive_accepts_positive():
    assert require_positive(3.5, "x") == 3.5


@pytest.mark.parametrize("value", [0, -1, -0.001])
def test_require_positive_rejects_non_positive(value):
    with pytest.raises(ValueError, match="x must be positive"):
        require_positive(value, "x")


def test_require_non_negative():
    assert require_non_negative(0, "x") == 0
    with pytest.raises(ValueError):
        require_non_negative(-1e-9, "x")


def test_require_between():
    assert require_between(0.5, 0, 1, "x") == 0.5
    with pytest.raises(ValueError):
        require_between(1.5, 0, 1, "x")


def test_require_in():
    assert require_in("a", ("a", "b"), "x") == "a"
    with pytest.raises(ValueError):
        require_in("c", ("a", "b"), "x")


def test_require_type():
    assert require_type(3, int, "x") == 3
    with pytest.raises(TypeError):
        require_type(3, str, "x")


def test_require_shape_valid():
    assert require_shape((3, 32, 32), 3, "shape") == (3, 32, 32)


def test_require_shape_wrong_rank():
    with pytest.raises(ValueError, match="rank"):
        require_shape((3, 32), 3, "shape")


def test_require_shape_non_positive_dim():
    with pytest.raises(ValueError, match="positive"):
        require_shape((3, 0, 32), 3, "shape")
