"""Campaign supervision: deadlines, dead-lettering, circuit breaking, fsck."""

from __future__ import annotations

import json
import re
import threading
import time

import pytest

from repro.api.envelopes import SearchRequest, request_fingerprint
from repro.api.session import run_search
from repro.campaign import (
    CampaignPolicy,
    CampaignSupervisor,
    CellTimeout,
    CircuitBreaker,
    CircuitOpenError,
    DeadLetterQueue,
    RunStore,
    ShardedRunStore,
    StoreError,
    deadline,
    fsck_store,
    run_worker,
)
from repro.campaign.errors import (
    AuditLog,
    ErrorEnvelope,
    classify_error,
    summarize_audit,
)
from repro.campaign.manifest import CampaignManifest, resolve_backoff
from repro.campaign.store import record_crc, verify_record_crc
from repro.campaign.supervisor import (
    CIRCUIT_CLOSED,
    CIRCUIT_HALF_OPEN,
    CIRCUIT_OPEN,
    DEAD_LETTER_FILENAME,
)
from repro.cli import main as cli_main
from repro.resilience import faults
from repro.resilience.faults import FaultInjector

#: Budgets small enough that one real search is milliseconds.
FAST = dict(
    num_initial=4,
    num_iterations=2,
    candidate_pool_size=16,
    predictor_samples_per_type=40,
)


def _request(**overrides) -> SearchRequest:
    fields = dict(FAST, scenario="wifi-3mbps/jetson-tx2-gpu", strategy="random", seed=0)
    fields.update(overrides)
    return SearchRequest(**fields)


def _envelope(code="E_EXECUTION", **overrides) -> ErrorEnvelope:
    fields = dict(code=code, message="boom", fingerprint="cell-1", time_s=1.0)
    fields.update(overrides)
    return ErrorEnvelope(**fields)


# ---------------------------------------------------------------------- policy


class TestCampaignPolicy:
    def test_defaults_supervise_nothing(self):
        policy = CampaignPolicy()
        assert policy.cell_timeout_s == 0.0
        assert policy.circuit_threshold == 0.0
        assert not policy.circuit_enabled

    @pytest.mark.parametrize(
        "changes",
        [
            dict(ttl_s=0.0),
            dict(poll_s=-1.0),
            dict(max_attempts=0),
            dict(backoff_base_s=-0.1),
            dict(max_backoff_s=0.0),
            dict(cell_timeout_s=-1.0),
            dict(on_error="explode"),
            dict(checkpoint_every=-1),
            dict(circuit_window=0),
            dict(circuit_threshold=1.5),
            dict(circuit_threshold=-0.1),
            dict(circuit_cooldown_s=-1.0),
            dict(circuit_probes=0),
        ],
    )
    def test_invalid_fields_rejected(self, changes):
        with pytest.raises(ValueError):
            CampaignPolicy(**changes)

    def test_round_trip_and_replace(self):
        policy = CampaignPolicy(
            cell_timeout_s=12.0, circuit_threshold=0.5, max_backoff_s=7.0
        )
        assert CampaignPolicy.from_dict(policy.to_dict()) == policy
        assert policy.circuit_enabled
        assert policy.replace(circuit_threshold=0.0).circuit_enabled is False

    def test_from_dict_coerces_and_fills_defaults(self):
        policy = CampaignPolicy.from_dict({"ttl_s": "12", "max_attempts": "5"})
        assert policy.ttl_s == 12.0
        assert policy.max_attempts == 5
        assert policy.max_backoff_s == 60.0  # missing keys take defaults


class TestManifestPolicy:
    def test_v2_round_trip_keeps_supervision_fields(self, tmp_path):
        policy = CampaignPolicy(cell_timeout_s=9.0, circuit_threshold=0.25)
        manifest = CampaignManifest.from_requests([_request()], policy=policy)
        manifest.write(tmp_path)
        loaded = CampaignManifest.load(tmp_path)
        assert loaded.policy == policy
        assert loaded.cell_timeout_s == 9.0
        assert loaded.max_backoff_s == 60.0

    def test_v2_payload_mirrors_legacy_flat_keys(self):
        manifest = CampaignManifest.from_requests(
            [_request()], policy=CampaignPolicy(ttl_s=11.0, max_attempts=4)
        )
        payload = manifest.to_dict()
        assert payload["schema_version"] == 2
        assert payload["policy"]["ttl_s"] == 11.0
        # a pre-supervision worker reads the flat keys
        assert payload["ttl_s"] == 11.0
        assert payload["max_attempts"] == 4

    def test_v1_flat_manifest_still_loads(self):
        request = _request()
        v1 = {
            "cells": {request_fingerprint(request): request.to_dict()},
            "ttl_s": 17.0,
            "poll_s": 0.25,
            "max_attempts": 2,
            "backoff_base_s": 0.1,
            "on_error": "continue",
            "created_at": 123.0,
        }
        manifest = CampaignManifest.from_dict(v1)
        assert manifest.ttl_s == 17.0
        assert manifest.max_attempts == 2
        assert manifest.on_error == "continue"
        # supervision fields take their off-by-default values
        assert manifest.cell_timeout_s == 0.0
        assert not manifest.policy.circuit_enabled

    def test_flat_overrides_apply_on_top_of_policy(self):
        manifest = CampaignManifest.from_requests(
            [_request()],
            policy=CampaignPolicy(cell_timeout_s=5.0),
            ttl_s=9.0,
        )
        assert manifest.ttl_s == 9.0
        assert manifest.cell_timeout_s == 5.0


class TestResolveBackoff:
    def test_legacy_shape_is_exact_and_uncapped(self):
        assert resolve_backoff(100.0, 1, 0.5) == 100.5
        assert resolve_backoff(100.0, 3, 0.5) == 102.0
        assert resolve_backoff(0.0, 10, 1.0) == 512.0

    def test_cap_clamps_high_attempts(self):
        assert resolve_backoff(0.0, 10, 1.0, max_backoff_s=5.0) == 5.0
        # below the cap the delay is untouched
        assert resolve_backoff(0.0, 2, 1.0, max_backoff_s=5.0) == 2.0

    def test_cap_applies_after_jitter(self):
        for attempt in range(1, 12):
            ready = resolve_backoff(
                0.0, attempt, 1.0, fingerprint="cell", max_backoff_s=3.0
            )
            assert ready <= 3.0


# ---------------------------------------------------------------------- deadline


class TestDeadline:
    def test_zero_disables_the_watchdog(self):
        with deadline(0):
            time.sleep(0.01)

    def test_main_thread_deadline_interrupts_a_blocking_sleep(self):
        start = time.time()
        with pytest.raises(CellTimeout):
            with deadline(0.2):
                time.sleep(30)
        assert time.time() - start < 5.0

    def test_timer_is_disarmed_after_the_block(self):
        with deadline(0.5):
            pass
        time.sleep(0.7)  # a leaked itimer would fire here and kill pytest

    def test_fallback_path_interrupts_other_threads(self):
        outcome = {}

        def work():
            try:
                with deadline(0.2):
                    finish = time.time() + 30
                    while time.time() < finish:
                        pass
            except CellTimeout:
                outcome["timed_out"] = True

        thread = threading.Thread(target=work)
        thread.start()
        thread.join(timeout=20)
        assert outcome.get("timed_out")

    def test_timeout_classifies_as_e_timeout(self):
        assert isinstance(CellTimeout("late"), TimeoutError)
        assert classify_error(CellTimeout("late")) == "E_TIMEOUT"

    def test_circuit_open_error_is_a_runtime_error(self):
        assert issubclass(CircuitOpenError, RuntimeError)


# ---------------------------------------------------------------------- dead letter


class TestDeadLetterQueue:
    def test_bury_readmit_round_trip(self, tmp_path):
        queue = DeadLetterQueue(tmp_path)
        assert not queue.is_dead("cell-1")
        assert queue.readmitted_at("cell-1") is None

        chain = [_envelope(attempt=1), _envelope(attempt=2, final=True)]
        queue.bury("cell-1", reason="retry budget exhausted", envelopes=chain,
                   worker="w1")
        assert queue.is_dead("cell-1")
        assert len(queue) == 1
        assert [e.attempt for e in queue.envelopes("cell-1")] == [1, 2]
        assert queue.summary()["reasons"]["cell-1"] == "retry budget exhausted"

        assert queue.readmit("cell-1") is True
        assert not queue.is_dead("cell-1")
        assert queue.readmitted_at("cell-1") is not None
        assert queue.envelopes("cell-1") == []
        # burial history is append-only, never rewritten
        events = [json.loads(line) for line in
                  (tmp_path / DEAD_LETTER_FILENAME).read_text().splitlines()]
        assert [e["event"] for e in events] == ["bury", "readmit"]

    def test_readmit_of_unburied_cell_is_refused(self, tmp_path):
        queue = DeadLetterQueue(tmp_path)
        assert queue.readmit("never-buried") is False
        queue.bury("cell-1", reason="x")
        queue.readmit("cell-1")
        assert queue.readmit("cell-1") is False  # already re-admitted

    def test_readmit_all_returns_fingerprints(self, tmp_path):
        queue = DeadLetterQueue(tmp_path)
        queue.bury("b", reason="x")
        queue.bury("a", reason="y")
        assert queue.readmit_all() == ["a", "b"]
        assert len(queue) == 0
        assert queue.readmit_all() == []

    def test_second_burial_after_readmission_wins(self, tmp_path):
        queue = DeadLetterQueue(tmp_path)
        queue.bury("cell-1", reason="first life")
        queue.readmit("cell-1")
        queue.bury("cell-1", reason="second life")
        assert queue.is_dead("cell-1")
        assert queue.summary()["reasons"]["cell-1"] == "second life"
        assert queue.readmitted_at("cell-1") is None

    def test_torn_tail_is_ignored(self, tmp_path):
        queue = DeadLetterQueue(tmp_path)
        queue.bury("cell-1", reason="x")
        with (tmp_path / DEAD_LETTER_FILENAME).open("ab") as handle:
            handle.write(b'{"event": "readmit", "fingerprint": "cell-1"')
        assert queue.is_dead("cell-1")  # the half-written readmit never landed


# ---------------------------------------------------------------------- breaker


class TestCircuitBreaker:
    def test_disabled_breaker_never_opens(self):
        breaker = CircuitBreaker(window=2, threshold=0.0)
        for _ in range(10):
            assert breaker.record(False, now=0.0) == CIRCUIT_CLOSED
        assert breaker.allows(now=0.0)

    def test_opens_only_once_the_window_is_full(self):
        breaker = CircuitBreaker(window=3, threshold=1.0, cooldown_s=60.0)
        assert breaker.record(False, now=1.0) == CIRCUIT_CLOSED
        assert breaker.record(False, now=2.0) == CIRCUIT_CLOSED
        assert breaker.record(False, now=3.0) == CIRCUIT_OPEN
        assert breaker.failure_rate() == 1.0
        assert not breaker.allows(now=4.0)  # still cooling down

    def test_successes_keep_the_rate_below_threshold(self):
        breaker = CircuitBreaker(window=4, threshold=0.75, cooldown_s=60.0)
        for now, ok in enumerate([False, True, False, True, False, True]):
            breaker.record(ok, now=float(now))
        assert breaker.state == CIRCUIT_CLOSED  # sliding rate stays at 0.5

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(window=2, threshold=1.0, cooldown_s=5.0, probes=1)
        breaker.record(False, now=0.0)
        breaker.record(False, now=1.0)
        assert breaker.state == CIRCUIT_OPEN
        assert breaker.allows(now=10.0)  # past cooldown: half-opens, one probe
        assert breaker.state == CIRCUIT_HALF_OPEN
        assert not breaker.allows(now=10.1)  # all probe slots out
        assert breaker.record(True, now=11.0) == CIRCUIT_CLOSED
        assert breaker.results == []  # window starts fresh

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(window=2, threshold=1.0, cooldown_s=5.0)
        breaker.record(False, now=0.0)
        breaker.record(False, now=1.0)
        assert breaker.allows(now=10.0)
        assert breaker.record(False, now=11.0) == CIRCUIT_OPEN
        assert breaker.opened_at == 11.0  # cooldown restarts from the probe
        states = [t[2] for t in breaker.transitions]
        assert states == [CIRCUIT_OPEN, CIRCUIT_HALF_OPEN, CIRCUIT_OPEN]

    def test_round_trip_preserves_state(self):
        breaker = CircuitBreaker(window=2, threshold=1.0, cooldown_s=5.0)
        breaker.record(False, now=0.0)
        breaker.record(False, now=1.0)
        clone = CircuitBreaker.from_dict(breaker.to_dict())
        assert clone.state == CIRCUIT_OPEN
        assert clone.opened_at == breaker.opened_at
        assert clone.transitions == breaker.transitions


class TestCampaignSupervisor:
    POLICY = CampaignPolicy(
        circuit_window=2, circuit_threshold=1.0, circuit_cooldown_s=60.0
    )

    def test_state_is_shared_across_instances(self, tmp_path):
        first = CampaignSupervisor(tmp_path, self.POLICY)
        second = CampaignSupervisor(tmp_path, self.POLICY)
        first.record_result(False)
        assert first.record_result(False) == CIRCUIT_OPEN
        assert second.circuit_state() == CIRCUIT_OPEN
        assert not second.circuit_allows()

    def test_release_probe_returns_the_slot(self, tmp_path):
        policy = self.POLICY.replace(circuit_cooldown_s=0.0)
        supervisor = CampaignSupervisor(tmp_path, policy)
        supervisor.record_result(False)
        supervisor.record_result(False)
        assert supervisor.circuit_allows()  # half-opens, takes the only probe
        assert not supervisor.circuit_allows()
        supervisor.release_probe()  # the claim no-opped; hand the slot back
        assert supervisor.circuit_allows()

    def test_disabled_policy_touches_nothing(self, tmp_path):
        supervisor = CampaignSupervisor(tmp_path, CampaignPolicy())
        assert supervisor.record_result(False) == CIRCUIT_CLOSED
        assert supervisor.circuit_allows()
        supervisor.release_probe()
        assert not supervisor.path.exists()
        assert supervisor.summary()["circuit_state"] == "disabled"

    def test_timeout_kills_and_dead_letters_in_summary(self, tmp_path):
        supervisor = CampaignSupervisor(tmp_path, CampaignPolicy())
        supervisor.note_timeout_kill()
        supervisor.note_timeout_kill()
        DeadLetterQueue(tmp_path).bury("cell-1", reason="x")
        summary = supervisor.summary()
        assert summary["timeout_kills"] == 2
        assert summary["dead_lettered"] == 1

    def test_corrupt_state_file_resets_to_fresh(self, tmp_path):
        supervisor = CampaignSupervisor(tmp_path, self.POLICY)
        supervisor.record_result(False)
        supervisor.path.write_text("{ not json", encoding="utf-8")
        assert supervisor.circuit_state() == CIRCUIT_CLOSED
        assert supervisor.circuit_allows()


# ---------------------------------------------------------------------- worker


class TestWorkerSupervision:
    def _manifest(self, request, **policy_changes):
        policy = CampaignPolicy(
            ttl_s=15.0,
            poll_s=0.05,
            max_attempts=2,
            backoff_base_s=0.05,
            max_backoff_s=1.0,
            cell_timeout_s=1.0,
        ).replace(**policy_changes)
        return CampaignManifest.from_requests([request], policy=policy)

    def test_deadline_kill_dead_letter_and_readmission(self, tmp_path):
        store_dir = tmp_path / "store"
        request = _request()
        fingerprint = request_fingerprint(request)
        manifest = self._manifest(request)
        manifest.write(store_dir)

        with faults.inject(FaultInjector(hang_at_evaluation=1, hang_seconds=60)):
            report = run_worker(store_dir, worker_id="wedged", manifest=manifest)

        assert report.timeout_kills == 2  # max_attempts, each killed at 1s
        assert report.dead_lettered == 1
        assert report.executed == 0
        assert report.summary()["timeout_kills"] == 2

        store = ShardedRunStore(store_dir)
        assert fingerprint not in store
        records = list(store.iter_audit_records())
        assert [r.code for r in records] == ["E_TIMEOUT", "E_TIMEOUT"]
        assert records[0].retryable and not records[0].final
        assert records[1].final
        assert records[1].context.get("dead_letter") is True

        queue = DeadLetterQueue(store_dir)
        assert queue.is_dead(fingerprint)
        chain = queue.envelopes(fingerprint)
        assert [e.attempt for e in chain] == [1, 2]

        # a scavenger never claims the buried cell
        scavenger = run_worker(store_dir, worker_id="scavenger", manifest=manifest)
        assert scavenger.executed == 0
        assert fingerprint not in ShardedRunStore(store_dir)

        # re-admission grants a fresh budget; a healthy worker finishes it
        assert queue.readmit(fingerprint) is True
        finisher = run_worker(store_dir, worker_id="finisher", manifest=manifest)
        assert finisher.executed == 1
        assert finisher.timeout_kills == 0
        assert fingerprint in ShardedRunStore(store_dir)

    def test_supervision_summary_rides_on_the_store(self, tmp_path):
        store_dir = tmp_path / "store"
        request = _request()
        manifest = self._manifest(request)
        manifest.write(store_dir)
        with faults.inject(FaultInjector(hang_at_evaluation=1, hang_seconds=60)):
            run_worker(store_dir, worker_id="wedged", manifest=manifest)
        summary = CampaignSupervisor(store_dir, manifest.policy).summary()
        assert summary["timeout_kills"] == 2
        assert summary["dead_lettered"] == 1
        assert summary["circuit_state"] == "disabled"

        audit = summarize_audit(ShardedRunStore(store_dir).iter_audit_records())
        assert audit["by_code"] == {"E_TIMEOUT": 2}
        assert audit["dead_lettered"] == [request_fingerprint(request)]


# ---------------------------------------------------------------------- integrity


def _synthetic_line(fingerprint, crc=True, scenario="s/d"):
    record = {
        "fingerprint": fingerprint,
        "outcome": {
            "request": {
                "scenario": scenario,
                "strategy": "x",
                "search_space": "sp",
                "seed": 0,
            },
            "candidates": [],
            "wall_time_s": 0.0,
        },
    }
    if crc:
        record["crc32"] = record_crc(record)
    return (json.dumps(record) + "\n").encode("utf-8")


def _flip_crc_digit(data: bytes) -> bytes:
    """Corrupt the last digit of the first crc32 value in ``data``."""
    match = re.search(rb'"crc32": ?(\d+)', data)
    assert match, "no crc32 field to corrupt"
    last = match.end(1) - 1
    digit = data[last : last + 1]
    flipped = b"1" if digit != b"1" else b"2"
    return data[:last] + flipped + data[last + 1 :]


class TestStoreIntegrity:
    def test_new_records_carry_a_verifying_crc(self, tmp_path):
        store = RunStore(tmp_path / "flat")
        store.append(run_search(_request()))
        raw = (tmp_path / "flat" / "runs.jsonl").read_bytes()
        record = json.loads(raw.decode("utf-8"))
        assert verify_record_crc(record)
        assert record["crc32"] == record_crc(record)

    def test_sharded_records_carry_a_verifying_crc(self, tmp_path):
        store = ShardedRunStore(tmp_path / "sharded")
        store.append(run_search(_request()))
        shard = next(iter((tmp_path / "sharded" / "shards").glob("*.jsonl")))
        record = json.loads(shard.read_bytes().decode("utf-8"))
        assert verify_record_crc(record)

    def test_crc_is_independent_of_key_order(self):
        record = json.loads(_synthetic_line("f1").decode("utf-8"))
        reordered = dict(reversed(list(record.items())))
        assert verify_record_crc(reordered)

    def test_legacy_records_without_crc_still_read(self, tmp_path):
        directory = tmp_path / "flat"
        directory.mkdir()
        (directory / "runs.jsonl").write_bytes(
            _synthetic_line("old", crc=False) + _synthetic_line("new")
        )
        store = RunStore(directory)
        assert store.fingerprints() == ["old", "new"]
        report = fsck_store(directory)
        assert report["legacy"] == 1
        assert report["intact"] == 1
        assert report["clean"]

    def test_flat_store_refuses_to_serve_rotten_records(self, tmp_path):
        directory = tmp_path / "flat"
        directory.mkdir()
        runs = directory / "runs.jsonl"
        runs.write_bytes(_synthetic_line("f1") + _synthetic_line("f2"))
        assert len(RunStore(directory)) == 2
        runs.write_bytes(_flip_crc_digit(runs.read_bytes()))
        with pytest.raises(StoreError, match="CRC mismatch.*fsck"):
            RunStore(directory)

    def test_sharded_store_skips_and_counts_rotten_records(self, tmp_path):
        store = ShardedRunStore(tmp_path / "sharded")
        fingerprint = store.append(run_search(_request()))
        shard = next(iter((tmp_path / "sharded" / "shards").glob("*.jsonl")))
        shard.write_bytes(_flip_crc_digit(shard.read_bytes()))
        reopened = ShardedRunStore(tmp_path / "sharded")
        assert fingerprint not in reopened
        assert reopened.summary()["crc_mismatches"] == 1

    def test_fsck_classifies_every_damage_mode(self, tmp_path):
        directory = tmp_path / "flat"
        directory.mkdir()
        intact = _synthetic_line("ok")
        legacy = _synthetic_line("old", crc=False)
        rotten = _flip_crc_digit(_synthetic_line("rot"))
        corrupt = b"not json at all\n"
        torn = b'{"fingerprint": "torn'
        (directory / "runs.jsonl").write_bytes(
            intact + legacy + rotten + corrupt + torn
        )
        report = fsck_store(directory)
        assert report["intact"] == 1
        assert report["legacy"] == 1
        assert report["crc_mismatch"] == 1
        assert report["corrupt"] == 1
        assert report["torn_bytes"] == len(torn)
        assert not report["clean"]
        assert not report["repaired"]
        assert "quarantine_dir" not in report

    def test_fsck_repair_quarantines_and_preserves_good_bytes(self, tmp_path):
        directory = tmp_path / "flat"
        directory.mkdir()
        intact = _synthetic_line("ok")
        legacy = _synthetic_line("old", crc=False)
        rotten = _flip_crc_digit(_synthetic_line("rot"))
        torn = b'{"fingerprint": "torn'
        (directory / "runs.jsonl").write_bytes(intact + legacy + rotten + torn)

        report = fsck_store(directory, repair=True)
        assert report["repaired"]
        assert report["quarantined_lines"] == 2
        sidecar = directory / "quarantine" / "runs.jsonl"
        assert sidecar.exists()
        assert rotten in sidecar.read_bytes()
        # intact and legacy lines survive byte-identically
        assert (directory / "runs.jsonl").read_bytes() == intact + legacy
        assert RunStore(directory).fingerprints() == ["ok", "old"]

        after = fsck_store(directory)
        assert after["clean"]
        assert not after["repaired"]

    def test_fsck_repair_on_a_clean_store_is_a_noop(self, tmp_path):
        directory = tmp_path / "flat"
        directory.mkdir()
        payload = _synthetic_line("ok")
        (directory / "runs.jsonl").write_bytes(payload)
        report = fsck_store(directory, repair=True)
        assert report["clean"]
        assert not report["repaired"]
        assert not (directory / "quarantine").exists()
        assert (directory / "runs.jsonl").read_bytes() == payload


# ---------------------------------------------------------------------- audit


class TestAuditStreaming:
    def test_iter_records_streams_lazily(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl")
        for attempt in (1, 2, 3):
            log.append(_envelope(attempt=attempt))
        stream = log.iter_records()
        assert next(stream).attempt == 1  # a generator, not a list
        assert [r.attempt for r in stream] == [2, 3]
        assert [r.attempt for r in log.records()] == [1, 2, 3]

    def test_store_audit_streaming_matches_the_list_path(self, tmp_path):
        store = ShardedRunStore(tmp_path / "sharded")
        log = store.audit_log("s/d", "sp")
        log.append(_envelope())
        log.append(_envelope(code="E_TIMEOUT", attempt=2))
        streamed = [r.code for r in store.iter_audit_records()]
        assert streamed == [r.code for r in store.audit_records()]
        assert streamed == ["E_EXECUTION", "E_TIMEOUT"]

    def test_summarize_audit_accepts_a_generator(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl")
        log.append(_envelope(final=True))
        log.append(_envelope(code="E_TIMEOUT", attempt=2, worker="w1"))
        summary = summarize_audit(log.iter_records())
        assert summary["num_records"] == 2
        assert summary["by_code"] == {"E_EXECUTION": 1, "E_TIMEOUT": 1}
        assert summary["failed_cells"] == ["cell-1"]
        assert summary["retries"] == 1
        assert summary["workers"] == ["w1"]

    def test_unknown_future_code_is_preserved_not_dropped(self):
        payload = _envelope().to_dict()
        payload["code"] = "E_QUANTUM_DECAY"
        payload["retryable"] = True  # never trust an unknown code to retry
        envelope = ErrorEnvelope.from_dict(payload)
        assert envelope.code == "E_QUANTUM_DECAY"
        assert envelope.retryable is False
        # direct construction stays strict
        with pytest.raises(ValueError, match="unknown error code"):
            ErrorEnvelope(code="E_QUANTUM_DECAY", message="x")
        # and a non-E_* code is rejected even through from_dict
        payload["code"] = "lowercase_junk"
        with pytest.raises(ValueError):
            ErrorEnvelope.from_dict(payload)

    def test_summarize_audit_counts_future_codes_and_dead_letters(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl")
        log.append(_envelope(code="E_TIMEOUT"))
        future = _envelope(final=True).to_dict()
        future["code"] = "E_QUANTUM_DECAY"
        log.path.parent.mkdir(parents=True, exist_ok=True)
        with log.path.open("ab") as handle:
            handle.write((json.dumps(future) + "\n").encode("utf-8"))
        log.append(
            _envelope(
                code="E_POISON",
                fingerprint="cell-2",
                final=True,
                context={"dead_letter": True},
            )
        )
        summary = summarize_audit(log.iter_records())
        assert summary["by_code"] == {
            "E_POISON": 1,
            "E_QUANTUM_DECAY": 1,
            "E_TIMEOUT": 1,
        }
        assert summary["failed_cells"] == ["cell-1", "cell-2"]
        assert summary["dead_lettered"] == ["cell-2"]

    def test_report_renders_dead_letter_count_not_the_list(self, tmp_path):
        store = ShardedRunStore(tmp_path / "sharded")
        store.audit_log("s/d", "sp").append(
            _envelope(
                code="E_POISON", final=True, context={"dead_letter": True}
            )
        )
        from repro.analysis.reporting import ExperimentReport

        report = ExperimentReport(title="t")
        report.add_audit_summary(summarize_audit(store.iter_audit_records()))
        markdown = report.render_markdown()
        assert "**1** poison cell(s) dead-lettered" in markdown
        assert "[" not in markdown.split("poison")[0].splitlines()[-1]

    def test_classify_error_edges(self):
        assert classify_error(CellTimeout("late")) == "E_TIMEOUT"
        assert classify_error(StoreError("bad")) == "E_STORE"
        assert classify_error(OSError(28, "no space")) == "E_SYSTEM"
        assert classify_error(MemoryError()) == "E_SYSTEM"
        assert classify_error(KeyError("field")) == "E_VALIDATION"
        assert classify_error(RuntimeError("strategy blew up")) == "E_EXECUTION"
        assert classify_error(KeyboardInterrupt()) == "E_INTERNAL"


# ---------------------------------------------------------------------- CLI


class TestSupervisionCLI:
    def test_campaign_flags_build_the_policy_and_circuit_exits_4(
        self, tmp_path, monkeypatch, capsys
    ):
        captured = {}

        def fake_run_campaign(spec, store, **kwargs):
            captured.update(kwargs)
            raise CircuitOpenError("campaign circuit breaker is open")

        monkeypatch.setattr("repro.cli.run_campaign", fake_run_campaign)
        code = cli_main(
            [
                "campaign",
                "--scenario", "wifi-3mbps/jetson-tx2-gpu",
                "--strategy", "random",
                "--seed", "0",
                "--store", str(tmp_path / "store"),
                "--cell-timeout", "7",
                "--circuit-threshold", "0.5",
                "--circuit-window", "4",
                "--circuit-cooldown", "9",
                "--circuit-probes", "2",
                "--max-backoff", "33",
                "--quiet",
            ]
        )
        assert code == 4
        assert "circuit breaker is open" in capsys.readouterr().err
        policy = captured["policy"]
        assert policy.cell_timeout_s == 7.0
        assert policy.circuit_threshold == 0.5
        assert policy.circuit_window == 4
        assert policy.circuit_cooldown_s == 9.0
        assert policy.circuit_probes == 2
        assert policy.max_backoff_s == 33.0

    def test_retry_dead_readmits_and_exits_0(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        queue = DeadLetterQueue(store_dir)
        queue.bury("cell-1", reason="poison")
        code = cli_main(["campaign", "--store", str(store_dir), "--retry-dead"])
        assert code == 0
        assert "1 dead-lettered cell(s) re-admitted" in capsys.readouterr().out
        assert len(DeadLetterQueue(store_dir)) == 0

    def test_store_fsck_exit_codes(self, tmp_path, capsys):
        directory = tmp_path / "store"
        directory.mkdir()
        runs = directory / "runs.jsonl"
        runs.write_bytes(_synthetic_line("ok"))
        assert cli_main(["store", "fsck", "--store", str(directory)]) == 0

        runs.write_bytes(_synthetic_line("ok") + _flip_crc_digit(_synthetic_line("rot")))
        assert cli_main(["store", "fsck", "--store", str(directory)]) == 1
        assert "--repair" in capsys.readouterr().err

        assert cli_main(
            ["store", "fsck", "--store", str(directory), "--repair"]
        ) == 0
        assert cli_main(["store", "fsck", "--store", str(directory)]) == 0
        assert RunStore(directory).fingerprints() == ["ok"]
