"""Golden-file fingerprint pinning across the v1 -> v2 -> v3 schema upgrades.

``tests/data/golden_requests_v1.json`` holds serialized schema-v1
:class:`~repro.api.envelopes.SearchRequest` payloads together with the
fingerprints they had *when schema v1 was current*.  Run stores key
persisted outcomes by fingerprint, so any drift would silently disconnect
every pre-upgrade store from its requests — these values must never change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.envelopes import (
    DEFAULT_BATCH_SIZE,
    SCHEMA_VERSION,
    SearchRequest,
    request_fingerprint,
)
from repro.nn.spaces import DEFAULT_SEARCH_SPACE

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_requests_v1.json"


def golden_entries():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))["requests"]


@pytest.mark.parametrize(
    "entry", golden_entries(), ids=lambda e: e["fingerprint"]
)
def test_v1_fingerprints_never_shift(entry):
    request = SearchRequest.from_dict(entry["request"])
    assert request.fingerprint() == entry["fingerprint"]
    assert request_fingerprint(request) == entry["fingerprint"]


@pytest.mark.parametrize(
    "entry", golden_entries(), ids=lambda e: e["fingerprint"]
)
def test_v1_payloads_upgrade_to_current_schema(entry):
    assert entry["request"]["schema_version"] == 1
    assert "search_space" not in entry["request"]
    request = SearchRequest.from_dict(entry["request"])
    assert request.schema_version == SCHEMA_VERSION
    assert request.search_space == DEFAULT_SEARCH_SPACE


def test_upgraded_request_round_trips_with_stable_fingerprint():
    entry = golden_entries()[0]
    request = SearchRequest.from_dict(entry["request"])
    rewritten = SearchRequest.from_dict(request.to_dict())
    assert rewritten == request
    assert rewritten.to_dict()["schema_version"] == SCHEMA_VERSION
    assert rewritten.fingerprint() == entry["fingerprint"]


def test_explicit_default_space_matches_v1_fingerprint():
    """Writing search_space="lens-vgg" out loud is the same computation."""
    entry = golden_entries()[0]
    payload = dict(entry["request"])
    payload["schema_version"] = SCHEMA_VERSION
    payload["search_space"] = DEFAULT_SEARCH_SPACE
    assert SearchRequest.from_dict(payload).fingerprint() == entry["fingerprint"]


def test_non_default_space_changes_the_fingerprint():
    entry = golden_entries()[0]
    request = SearchRequest.from_dict(entry["request"])
    fingerprints = {
        request.replace(search_space=name).fingerprint()
        for name in (DEFAULT_SEARCH_SPACE, "resnet-v1", "seq-conv1d")
    }
    assert len(fingerprints) == 3
    assert entry["fingerprint"] in fingerprints


def test_tags_and_schema_version_stay_excluded():
    entry = golden_entries()[0]
    request = SearchRequest.from_dict(entry["request"])
    tagged = request.replace(tags={"note": "irrelevant"})
    assert tagged.fingerprint() == entry["fingerprint"]


# ---------------------------------------------------------------- v2 -> v3


def test_v1_payloads_upgrade_with_default_batch_size():
    entry = golden_entries()[0]
    request = SearchRequest.from_dict(entry["request"])
    assert request.batch_size == DEFAULT_BATCH_SIZE


def test_v2_payload_without_batch_size_upgrades_and_keeps_fingerprint():
    entry = golden_entries()[0]
    v2_payload = dict(entry["request"], schema_version=2)
    request = SearchRequest.from_dict(v2_payload)
    assert request.schema_version == SCHEMA_VERSION
    assert request.batch_size == DEFAULT_BATCH_SIZE
    assert request.fingerprint() == entry["fingerprint"]


def test_explicit_default_batch_size_matches_v1_fingerprint():
    """Writing batch_size=1 out loud is the same computation."""
    entry = golden_entries()[0]
    payload = dict(entry["request"])
    payload["schema_version"] = SCHEMA_VERSION
    payload["batch_size"] = DEFAULT_BATCH_SIZE
    assert SearchRequest.from_dict(payload).fingerprint() == entry["fingerprint"]


def test_non_default_batch_size_changes_the_fingerprint():
    entry = golden_entries()[0]
    request = SearchRequest.from_dict(entry["request"])
    assert request.replace(batch_size=4).fingerprint() != entry["fingerprint"]


def test_batch_size_round_trips_and_validates():
    entry = golden_entries()[0]
    request = SearchRequest.from_dict(entry["request"]).replace(batch_size=4)
    rewritten = SearchRequest.from_dict(request.to_dict())
    assert rewritten.batch_size == 4
    assert rewritten.fingerprint() == request.fingerprint()
    with pytest.raises(ValueError):
        request.replace(batch_size=0)
