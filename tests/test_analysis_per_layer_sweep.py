"""Tests for the per-layer report (Fig. 1) and deployment sweeps (Fig. 2 / Table I)."""

import pytest

from repro.analysis.deployment_sweep import (
    DeploymentConfiguration,
    preference_changes,
    regional_preferences,
    sweep_deployments,
)
from repro.analysis.per_layer import latency_share_by_type, per_layer_report
from repro.wireless.regions import paper_regions


class TestPerLayerReport:
    def test_rows_cover_every_layer(self, alexnet, gpu_oracle):
        rows = per_layer_report(alexnet, gpu_oracle)
        assert len(rows) == len(alexnet)
        assert [row.name for row in rows] == [layer.name for layer in alexnet.layers]

    def test_latency_shares_sum_to_one_hundred(self, alexnet, gpu_oracle):
        rows = per_layer_report(alexnet, gpu_oracle)
        assert sum(row.latency_share_percent for row in rows) == pytest.approx(100.0)

    def test_fig1_takeaway_fc_layers_take_about_half_the_time(self, alexnet, gpu_oracle):
        shares = latency_share_by_type(alexnet, gpu_oracle)
        assert 35.0 < shares["fc"] < 75.0

    def test_fig1_takeaway_early_layers_exceed_input_size(self, alexnet, gpu_oracle):
        rows = {row.name: row for row in per_layer_report(alexnet, gpu_oracle)}
        assert not rows["conv1"].smaller_than_input
        assert not rows["conv3"].smaller_than_input
        assert rows["pool5"].smaller_than_input
        assert rows["fc6"].smaller_than_input

    def test_output_sizes_reported_in_kilobytes(self, alexnet, gpu_oracle):
        rows = {row.name: row for row in per_layer_report(alexnet, gpu_oracle)}
        assert rows["pool5"].output_kilobytes == pytest.approx(36.0, abs=0.1)
        assert rows["fc6"].output_kilobytes == pytest.approx(16.0, abs=0.1)

    def test_row_serialisation(self, alexnet, gpu_oracle):
        row = per_layer_report(alexnet, gpu_oracle)[0]
        data = row.to_dict()
        assert data["name"] == "conv1"
        assert data["latency_share_percent"] > 0


class TestDeploymentSweep:
    @pytest.fixture(scope="class")
    def configurations(self, gpu_oracle, cpu_oracle):
        return [
            DeploymentConfiguration("GPU/WiFi", gpu_oracle, "wifi"),
            DeploymentConfiguration("CPU/LTE", cpu_oracle, "lte"),
        ]

    def test_sweep_produces_one_row_per_cell(self, alexnet, configurations):
        rows = sweep_deployments(alexnet, configurations, (1.0, 10.0), ("latency", "energy"))
        assert len(rows) == 2 * 2 * 2
        assert {row.configuration for row in rows} == {"GPU/WiFi", "CPU/LTE"}

    def test_best_value_never_exceeds_extremes(self, alexnet, configurations):
        rows = sweep_deployments(alexnet, configurations, (0.7, 3.0, 16.1))
        for row in rows:
            assert row.best_value <= row.all_edge_value + 1e-12
            assert row.best_value <= row.all_cloud_value + 1e-12

    def test_fig2_shape_gpu_wifi_latency_prefers_split_only_at_high_throughput(
        self, alexnet, configurations
    ):
        rows = sweep_deployments(alexnet, configurations[:1], (1.0, 30.0), ("latency",))
        by_tu = {row.uplink_mbps: row.best_option for row in rows}
        assert by_tu[1.0] == "All-Edge"
        assert by_tu[30.0] != "All-Edge"

    def test_fig2_shape_cpu_lte_prefers_cloud_at_high_throughput(
        self, alexnet, configurations
    ):
        rows = sweep_deployments(alexnet, configurations[1:], (0.7, 16.1), ("latency",))
        by_tu = {row.uplink_mbps: row.best_option for row in rows}
        assert by_tu[0.7] == "All-Edge"
        assert by_tu[16.1] == "All-Cloud"

    def test_table1_regional_preferences_vary_across_regions(self, alexnet, configurations):
        rows = regional_preferences(alexnet, configurations, paper_regions())
        assert len(rows) == 3 * 2 * 2
        assert preference_changes(rows) >= 2
        # Afghanistan (0.7 Mbps) never prefers All-Cloud under any metric.
        afghan = [row for row in rows if row.region == "Afghanistan"]
        assert all(row.best_option != "All-Cloud" for row in afghan)

    def test_table1_majority_of_paper_cells_reproduced(self, alexnet, configurations):
        """At least 9 of the 12 Table I cells should match the paper."""
        expected = {
            ("South Korea", "GPU/WiFi", "latency"): "All-Edge",
            ("South Korea", "GPU/WiFi", "energy"): "Split@pool5",
            ("South Korea", "CPU/LTE", "latency"): "All-Cloud",
            ("South Korea", "CPU/LTE", "energy"): "All-Cloud",
            ("USA", "GPU/WiFi", "latency"): "All-Edge",
            ("USA", "GPU/WiFi", "energy"): "Split@pool5",
            ("USA", "CPU/LTE", "latency"): "Split@pool5",
            ("USA", "CPU/LTE", "energy"): "All-Cloud",
            ("Afghanistan", "GPU/WiFi", "latency"): "All-Edge",
            ("Afghanistan", "GPU/WiFi", "energy"): "All-Edge",
            ("Afghanistan", "CPU/LTE", "latency"): "All-Edge",
            ("Afghanistan", "CPU/LTE", "energy"): "Split@pool5",
        }
        rows = regional_preferences(alexnet, configurations, paper_regions())
        matches = sum(
            1
            for row in rows
            if expected[(row.region, row.configuration, row.metric)] == row.best_option
        )
        assert matches >= 9

    def test_row_serialisation(self, alexnet, configurations):
        sweep_row = sweep_deployments(alexnet, configurations[:1], (3.0,))[0]
        regional_row = regional_preferences(alexnet, configurations[:1], paper_regions()[:1])[0]
        assert sweep_row.to_dict()["configuration"] == "GPU/WiFi"
        assert regional_row.to_dict()["region"] == "South Korea"
