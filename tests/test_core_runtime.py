"""Tests for the runtime threshold analysis and dynamic deployment switching."""

import numpy as np
import pytest

from repro.core.runtime import (
    DynamicDeploymentController,
    ThresholdAnalysis,
    deployment_energy,
    deployment_latency,
    deployment_metric_value,
    pairwise_threshold,
    simulate_runtime,
)
from repro.partition.deployment import DeploymentMetrics, DeploymentOption
from repro.wireless.power_models import RadioPowerModel
from repro.wireless.tracker import ThroughputTracker
from repro.wireless.traces import ThroughputTrace


def edge_option(latency_s=0.04, energy_j=0.28):
    return DeploymentMetrics(
        option=DeploymentOption.all_edge(),
        latency_s=latency_s,
        energy_j=energy_j,
        edge_latency_s=latency_s,
        edge_energy_j=energy_j,
        comm_latency_s=0.0,
        comm_energy_j=0.0,
        transferred_bytes=0.0,
    )


def split_option(edge_latency_s=0.015, edge_energy_j=0.16, transferred_bytes=36864.0):
    return DeploymentMetrics(
        option=DeploymentOption.split_after(7, "pool5"),
        latency_s=0.0,  # placeholder; runtime code recomputes from components
        energy_j=0.0,
        edge_latency_s=edge_latency_s,
        edge_energy_j=edge_energy_j,
        comm_latency_s=0.0,
        comm_energy_j=0.0,
        transferred_bytes=transferred_bytes,
    )


def cloud_option(transferred_bytes=150528.0):
    return DeploymentMetrics(
        option=DeploymentOption.all_cloud(),
        latency_s=0.0,
        energy_j=0.0,
        edge_latency_s=0.0,
        edge_energy_j=0.0,
        comm_latency_s=0.0,
        comm_energy_j=0.0,
        transferred_bytes=transferred_bytes,
    )


WIFI = RadioPowerModel.for_technology("wifi")
RTT = 0.01


class TestDeploymentReEvaluation:
    def test_all_edge_is_throughput_independent(self):
        option = edge_option()
        assert deployment_latency(option, 1.0, RTT) == deployment_latency(option, 50.0, RTT)
        assert deployment_energy(option, 1.0, WIFI) == deployment_energy(option, 50.0, WIFI)

    def test_latency_formula(self):
        option = split_option()
        tu = 10.0
        expected = option.edge_latency_s + option.transferred_bytes * 8 / (tu * 1e6) + RTT
        assert deployment_latency(option, tu, RTT) == pytest.approx(expected)

    def test_energy_formula(self):
        option = split_option()
        tu = 10.0
        transmission = option.transferred_bytes * 8 / (tu * 1e6)
        expected = option.edge_energy_j + WIFI.power_w(tu) * transmission
        assert deployment_energy(option, tu, WIFI) == pytest.approx(expected)

    def test_dispatch_and_validation(self):
        option = split_option()
        assert deployment_metric_value(option, 5.0, "latency", WIFI, RTT) == pytest.approx(
            deployment_latency(option, 5.0, RTT)
        )
        with pytest.raises(ValueError):
            deployment_metric_value(option, 5.0, "throughput", WIFI, RTT)
        with pytest.raises(ValueError):
            deployment_latency(option, 0.0, RTT)


class TestPairwiseThresholds:
    def test_latency_threshold_matches_manual_solution(self):
        edge, split = edge_option(), split_option()
        threshold = pairwise_threshold(edge, split, "latency", WIFI, RTT)
        assert threshold is not None
        # At the threshold both options cost the same.
        assert deployment_latency(edge, threshold, RTT) == pytest.approx(
            deployment_latency(split, threshold, RTT), rel=1e-6
        )

    def test_energy_threshold_matches_manual_solution(self):
        edge, split = edge_option(), split_option()
        threshold = pairwise_threshold(edge, split, "energy", WIFI, RTT)
        assert threshold is not None
        assert deployment_energy(edge, threshold, WIFI) == pytest.approx(
            deployment_energy(split, threshold, WIFI), rel=1e-6
        )

    def test_no_crossover_returns_none(self):
        # Two all-edge-like options with different constants never cross.
        a = edge_option(latency_s=0.04)
        b = edge_option(latency_s=0.05)
        assert pairwise_threshold(a, b, "latency", WIFI, RTT) is None

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            pairwise_threshold(edge_option(), split_option(), "power", WIFI, RTT)


class TestThresholdAnalysis:
    def make_analysis(self, metric="energy"):
        return ThresholdAnalysis(
            options=[split_option(), edge_option()],
            power_model=WIFI,
            round_trip_s=RTT,
            metric=metric,
        )

    def test_best_option_switches_with_throughput(self):
        analysis = self.make_analysis("energy")
        threshold = analysis.switching_threshold()
        assert threshold is not None
        low = analysis.best_option(threshold * 0.5)
        high = analysis.best_option(threshold * 2.0)
        assert low.option != high.option
        # Below the threshold the edge-heavy option wins (cheap radio at low tu
        # means long transmissions): the split only pays off at higher rates.
        assert high.option.is_split

    def test_dominance_intervals_cover_range_without_overlap(self):
        analysis = self.make_analysis("latency")
        intervals = analysis.dominance_intervals(min_mbps=0.2, max_mbps=80.0)
        assert intervals[0].low_mbps == pytest.approx(0.2)
        assert intervals[-1].high_mbps == pytest.approx(80.0)
        for first, second in zip(intervals, intervals[1:]):
            assert first.high_mbps <= second.low_mbps
        assert any(i.contains(1.0) for i in intervals)

    def test_requires_two_options_and_valid_metric(self):
        with pytest.raises(ValueError):
            ThresholdAnalysis([edge_option()], WIFI, RTT)
        with pytest.raises(ValueError):
            ThresholdAnalysis([edge_option(), split_option()], WIFI, RTT, metric="power")

    def test_three_option_analysis(self):
        analysis = ThresholdAnalysis(
            options=[split_option(), edge_option(), cloud_option()],
            power_model=WIFI,
            round_trip_s=RTT,
            metric="latency",
        )
        best_slow = analysis.best_option(0.3)
        best_fast = analysis.best_option(80.0)
        assert best_slow.option.kind == "all_edge"
        assert best_fast.option.kind in ("all_cloud", "split")


class TestDynamicController:
    def test_switches_are_counted(self):
        analysis = ThresholdAnalysis(
            [split_option(), edge_option()], WIFI, RTT, metric="energy"
        )
        threshold = analysis.switching_threshold()
        controller = DynamicDeploymentController(analysis)
        controller.observe_and_select(threshold * 0.5)
        controller.observe_and_select(threshold * 2.0)
        controller.observe_and_select(threshold * 2.0)
        controller.observe_and_select(threshold * 0.5)
        assert controller.num_switches == 2

    def test_smoothing_tracker_damps_switching(self):
        analysis = ThresholdAnalysis(
            [split_option(), edge_option()], WIFI, RTT, metric="energy"
        )
        threshold = analysis.switching_threshold()
        jittery = [threshold * f for f in (0.5, 2.0, 0.5, 2.0, 0.5, 2.0)]
        eager = DynamicDeploymentController(analysis, ThroughputTracker(smoothing=1.0))
        calm = DynamicDeploymentController(analysis, ThroughputTracker(smoothing=0.2))
        for tu in jittery:
            eager.observe_and_select(tu)
            calm.observe_and_select(tu)
        assert calm.num_switches <= eager.num_switches


class TestTraceSimulation:
    def test_dynamic_never_worse_than_any_fixed_option(self):
        analysis = ThresholdAnalysis(
            [split_option(), edge_option()], WIFI, RTT, metric="energy"
        )
        threshold = analysis.switching_threshold()
        values = [threshold * f for f in (0.3, 0.6, 1.5, 3.0, 0.4, 2.5, 1.2, 0.8)]
        trace = ThroughputTrace.from_values(values)
        comparison = simulate_runtime(analysis, trace)
        dynamic = comparison.cumulative["dynamic"]
        for label, value in comparison.cumulative.items():
            assert dynamic <= value + 1e-12
        assert comparison.num_switches >= 1
        assert comparison.improvement_percent("All-Edge") >= 0.0
        with pytest.raises(KeyError):
            comparison.improvement_percent("nonexistent")

    def test_per_sample_series_have_trace_length(self):
        analysis = ThresholdAnalysis(
            [split_option(), edge_option()], WIFI, RTT, metric="latency"
        )
        trace = ThroughputTrace.from_values([1.0, 5.0, 20.0])
        comparison = simulate_runtime(analysis, trace)
        for series in comparison.per_sample.values():
            assert len(series) == 3
        assert comparison.to_dict()["metric"] == "latency"
