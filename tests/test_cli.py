"""The ``repro`` command line: list / run / campaign / report."""

from __future__ import annotations

import json

import pytest

from repro.api.envelopes import load_outcome
from repro.campaign import RunStore
from repro.cli import main

#: Tiny-budget flags shared by every command that runs a search.
FAST_FLAGS = [
    "--num-initial", "4",
    "--num-iterations", "2",
    "--pool-size", "16",
    "--predictor-samples", "40",
]

GRID_FLAGS = [
    "--scenario", "wifi-3mbps/jetson-tx2-gpu",
    "--scenario", "lte-3mbps/jetson-tx2-gpu",
    "--scenario", "3g-3mbps/jetson-tx2-cpu",
    "--strategy", "lens",
    "--strategy", "random",
]


def test_no_command_prints_help(capsys):
    assert main([]) == 0
    out = capsys.readouterr().out
    assert "usage: repro" in out
    assert "campaign" in out


def test_list_shows_registries(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "wifi-3mbps/jetson-tx2-gpu" in out
    assert "strategies: lens, random, traditional" in out
    assert "search spaces: lens-vgg, resnet-v1, seq-conv1d" in out
    assert "devices:" in out and "acquisitions:" in out


def test_run_prints_summary_and_persists(tmp_path, capsys):
    out_file = tmp_path / "outcome.json"
    store_dir = tmp_path / "store"
    code = main(["run", "--scenario", "wifi-3mbps/jetson-tx2-gpu",
                 "--strategy", "random", "--seed", "0",
                 "--out", str(out_file), "--store", str(store_dir), *FAST_FLAGS])
    assert code == 0
    out = capsys.readouterr().out
    assert "scenario:    wifi-3mbps/jetson-tx2-gpu" in out
    assert "fingerprint:" in out
    assert "lowest energy" in out

    outcome = load_outcome(out_file)
    assert len(outcome) == 6
    store = RunStore(store_dir)
    assert len(store) == 1

    # the same run again is detected as already stored
    assert main(["run", "--scenario", "wifi-3mbps/jetson-tx2-gpu",
                 "--strategy", "random", "--seed", "0",
                 "--store", str(store_dir), *FAST_FLAGS]) == 0
    assert "already present" in capsys.readouterr().out
    assert len(RunStore(store_dir)) == 1


def test_run_from_request_file(tmp_path, capsys):
    request_file = tmp_path / "request.json"
    request_file.write_text(json.dumps({
        "scenario": "lte-3mbps/jetson-tx2-gpu", "strategy": "random",
        "num_initial": 4, "num_iterations": 2, "candidate_pool_size": 16,
        "predictor_samples_per_type": 40, "seed": 1,
    }), encoding="utf-8")
    assert main(["run", "--request", str(request_file)]) == 0
    assert "lte-3mbps/jetson-tx2-gpu" in capsys.readouterr().out


def test_run_flags_override_request_file(tmp_path, capsys):
    request_file = tmp_path / "request.json"
    request_file.write_text(json.dumps({
        "scenario": "lte-3mbps/jetson-tx2-gpu", "strategy": "random",
        "num_initial": 4, "num_iterations": 2, "candidate_pool_size": 16,
        "predictor_samples_per_type": 40, "seed": 1,
    }), encoding="utf-8")
    out_file = tmp_path / "outcome.json"
    assert main(["run", "--request", str(request_file),
                 "--seed", "5", "--num-iterations", "3",
                 "--out", str(out_file)]) == 0
    capsys.readouterr()
    outcome = load_outcome(out_file)
    assert outcome.request.seed == 5
    assert outcome.request.num_iterations == 3
    assert outcome.request.num_initial == 4          # untouched file field
    assert len(outcome) == 7                         # 4 + 3 evaluations ran


def test_run_unknown_scenario_suggests(capsys):
    assert main(["run", "--scenario", "wifi-3mbps/jetson-tx2-gp"]) == 2
    err = capsys.readouterr().err
    assert "unknown scenario" in err
    assert "wifi-3mbps/jetson-tx2-gpu" in err  # the spelling suggestion


def test_run_with_named_search_space(tmp_path, capsys):
    store_dir = tmp_path / "store"
    assert main(["run", "--scenario", "wifi-3mbps/jetson-tx2-gpu",
                 "--strategy", "random", "--search-space", "seq-conv1d",
                 "--store", str(store_dir), *FAST_FLAGS]) == 0
    out = capsys.readouterr().out
    assert "space:       seq-conv1d" in out
    assert "seq-conv1d-" in out  # candidate names carry the space

    assert main(["list", "--store", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "seq-conv1d" in out


def test_run_unknown_search_space_suggests(capsys):
    assert main(["run", "--search-space", "resnet-v2", *FAST_FLAGS]) == 2
    err = capsys.readouterr().err
    assert "unknown search space" in err
    assert "Did you mean 'resnet-v1'?" in err


def test_campaign_across_spaces_and_list(tmp_path, capsys):
    store_dir = tmp_path / "store"
    assert main(["campaign", "--scenario", "wifi-3mbps/jetson-tx2-gpu",
                 "--strategy", "random",
                 "--search-space", "lens-vgg",
                 "--search-space", "resnet-v1",
                 "--search-space", "seq-conv1d",
                 "--store", str(store_dir), *FAST_FLAGS]) == 0
    out = capsys.readouterr().out
    assert "campaign done: 3 executed, 0 skipped, 3 cells" in out

    assert main(["list", "--store", str(store_dir)]) == 0
    out = capsys.readouterr().out
    for name in ("lens-vgg", "resnet-v1", "seq-conv1d"):
        assert name in out

    assert main(["report", "--store", str(store_dir)]) == 0
    assert "3 runs, metrics:" in capsys.readouterr().out


def test_campaign_unknown_search_space_fails_up_front(tmp_path, capsys):
    assert main(["campaign", "--scenario", "wifi-3mbps/jetson-tx2-gpu",
                 "--search-space", "resnet-v2",
                 "--store", str(tmp_path / "store"), *FAST_FLAGS]) == 2
    err = capsys.readouterr().err
    assert "unknown search space" in err
    assert "resnet-v1" in err


def test_campaign_and_report_round_trip(tmp_path, capsys):
    store_dir = tmp_path / "store"
    assert main(["campaign", *GRID_FLAGS, *FAST_FLAGS,
                 "--store", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "campaign done: 6 executed, 0 skipped, 6 cells" in out

    # re-running resumes: nothing executes
    assert main(["campaign", *GRID_FLAGS, *FAST_FLAGS,
                 "--store", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "campaign done: 0 executed, 6 skipped, 6 cells" in out
    assert "(already stored)" in out

    assert main(["report", "--store", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "6 runs, metrics: error_percent / energy_j" in out
    assert "winners (largest combined-frontier share):" in out

    assert main(["report", "--store", str(store_dir), "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["num_runs"] == 6
    assert len(payload["winners"]) == 3


def test_campaign_from_spec_file_with_report_out(tmp_path, capsys):
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps({
        "scenarios": ["wifi-3mbps/jetson-tx2-gpu"],
        "strategies": ["random"],
        "seeds": [0, 1],
        "num_initial": 4, "num_iterations": 2, "candidate_pool_size": 16,
        "predictor_samples_per_type": 40,
    }), encoding="utf-8")
    store_dir = tmp_path / "store"
    assert main(["campaign", "--spec", str(spec_file), "--store", str(store_dir),
                 "--quiet"]) == 0
    assert len(RunStore(store_dir)) == 2

    report_file = tmp_path / "report.md"
    assert main(["report", "--store", str(store_dir), "--format", "markdown",
                 "--out", str(report_file)]) == 0
    capsys.readouterr()
    assert "# Campaign report" in report_file.read_text(encoding="utf-8")


def test_campaign_without_grid_is_a_usage_error(tmp_path, capsys):
    assert main(["campaign", "--store", str(tmp_path / "store")]) == 2
    assert "--spec FILE or at least one --scenario" in capsys.readouterr().err


def test_report_on_empty_store_fails(tmp_path, capsys):
    assert main(["report", "--store", str(tmp_path / "empty")]) == 1
    assert "holds no runs" in capsys.readouterr().err


def test_report_identical_after_resume(tmp_path, capsys):
    """Acceptance: a resumed store reports exactly like a fresh full run."""
    full_dir = tmp_path / "full"
    assert main(["campaign", *GRID_FLAGS, *FAST_FLAGS, "--store", str(full_dir),
                 "--quiet"]) == 0
    capsys.readouterr()
    assert main(["report", "--store", str(full_dir)]) == 0
    full_report = capsys.readouterr().out

    # pre-seed a second store with half the runs, then resume the campaign
    full = RunStore(full_dir)
    partial_dir = tmp_path / "partial"
    partial = RunStore(partial_dir)
    for fingerprint in sorted(full.fingerprints())[:3]:
        partial.append(full.get(fingerprint), fingerprint=fingerprint)
    assert main(["campaign", *GRID_FLAGS, *FAST_FLAGS, "--store", str(partial_dir),
                 "--quiet"]) == 0
    capsys.readouterr()
    assert main(["report", "--store", str(partial_dir)]) == 0
    assert capsys.readouterr().out == full_report


SMALL_GRID = [
    "--scenario", "wifi-3mbps/jetson-tx2-gpu",
    "--strategy", "random",
    "--seed", "0",
    "--seed", "1",
]


def test_list_shows_executors(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "campaign executors: asyncio, process-pool, pull-worker, serial" in out


def test_campaign_sharded_store_and_list(tmp_path, capsys):
    store_dir = tmp_path / "sharded"
    assert main(["campaign", *SMALL_GRID, *FAST_FLAGS,
                 "--store", str(store_dir), "--sharded", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "campaign done: 2 executed" in out
    assert (store_dir / "shards").is_dir()
    assert main(["list", "--store", str(store_dir)]) == 0
    assert "2 runs in 1 shards" in capsys.readouterr().out


def test_campaign_pull_worker_executor(tmp_path, capsys):
    store_dir = tmp_path / "pull"
    assert main(["campaign", *SMALL_GRID, *FAST_FLAGS,
                 "--store", str(store_dir),
                 "--executor", "pull-worker", "--workers", "2",
                 "--ttl", "10", "--poll", "0.2", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "campaign done: 2 executed" in out
    # pull-worker implies a sharded store even without --sharded
    assert (store_dir / "shards").is_dir()
    assert (store_dir / "manifest.json").exists()
    assert main(["report", "--store", str(store_dir)]) == 0


def test_worker_command_drains_a_manifest(tmp_path, capsys):
    from repro.campaign import CampaignSpec, ShardedRunStore
    from repro.campaign.manifest import CampaignManifest

    store_dir = tmp_path / "shared"
    ShardedRunStore(store_dir)
    spec = CampaignSpec(
        scenarios=("wifi-3mbps/jetson-tx2-gpu",),
        strategies=("random",),
        seeds=(0,),
        num_initial=4, num_iterations=2, candidate_pool_size=16,
        predictor_samples_per_type=40,
    )
    CampaignManifest.from_requests(
        spec.requests(), ttl_s=10.0, poll_s=0.1
    ).write(store_dir)
    assert main(["worker", "--store", str(store_dir), "--worker-id", "w0"]) == 0
    captured = capsys.readouterr()
    assert "worker w0 done: 1 executed" in captured.out
    assert len(ShardedRunStore(store_dir)) == 1


def test_worker_without_manifest_fails(tmp_path, capsys):
    assert main(["worker", "--store", str(tmp_path / "nowhere")]) == 2
    assert "manifest" in capsys.readouterr().err


def test_store_compact_export_merge(tmp_path, capsys):
    store_dir = tmp_path / "sharded"
    assert main(["campaign", *SMALL_GRID, *FAST_FLAGS,
                 "--store", str(store_dir), "--sharded", "--quiet"]) == 0
    capsys.readouterr()

    assert main(["store", "compact", "--store", str(store_dir)]) == 0
    assert "2 records kept" in capsys.readouterr().out

    export_file = tmp_path / "metrics.json"
    assert main(["store", "export", "--store", str(store_dir),
                 "--out", str(export_file)]) == 0
    payload = json.loads(export_file.read_text(encoding="utf-8"))
    assert payload["num_groups"] == 2
    assert all(group["latency_s"] for group in payload["groups"])

    merged_dir = tmp_path / "merged"
    assert main(["store", "merge", str(store_dir),
                 "--into", str(merged_dir)]) == 0
    assert "merged 2 record(s)" in capsys.readouterr().out
    # idempotent: a second merge copies nothing
    assert main(["store", "merge", str(store_dir),
                 "--into", str(merged_dir)]) == 0
    assert "merged 0 record(s)" in capsys.readouterr().out


def test_store_compact_rejects_single_file_store(tmp_path, capsys):
    store_dir = tmp_path / "single"
    assert main(["campaign", *SMALL_GRID, *FAST_FLAGS,
                 "--store", str(store_dir), "--quiet"]) == 0
    capsys.readouterr()
    assert main(["store", "compact", "--store", str(store_dir)]) == 2
    assert "single-file" in capsys.readouterr().err


def test_store_without_operation_is_a_usage_error(capsys):
    assert main(["store"]) == 2
    assert "compact, export, merge or fsck" in capsys.readouterr().err


def test_campaign_on_error_continue_reports_failures(tmp_path, capsys):
    # an unknown scenario passes CLI parsing but cannot pass validate();
    # use a spec file with a valid grid plus a pre-stored conflicting state
    # is complex — instead drive run_campaign's knob through the CLI flag
    # with a healthy grid and assert the flag round-trips (exit 0, no fails)
    store_dir = tmp_path / "store"
    assert main(["campaign", *SMALL_GRID, *FAST_FLAGS,
                 "--store", str(store_dir), "--on-error", "continue",
                 "--quiet"]) == 0
    assert "campaign done: 2 executed" in capsys.readouterr().out
