"""Tests for repro.nn.layers."""

import pytest

from repro.nn.layers import (
    BYTES_PER_ELEMENT,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    element_count,
    layer_from_dict,
    shape_bytes,
)


def test_element_count_and_shape_bytes():
    assert element_count((3, 32, 32)) == 3072
    assert shape_bytes((3, 32, 32)) == 3072 * BYTES_PER_ELEMENT


class TestConv2D:
    def test_same_padding_preserves_spatial_size(self):
        conv = Conv2D(name="c", out_channels=64, kernel_size=3, padding="same")
        assert conv.output_shape((3, 32, 32)) == (64, 32, 32)

    def test_valid_padding_shrinks(self):
        conv = Conv2D(name="c", out_channels=8, kernel_size=5, padding="valid")
        assert conv.output_shape((3, 32, 32)) == (8, 28, 28)

    def test_integer_padding_matches_formula(self):
        conv = Conv2D(name="c", out_channels=96, kernel_size=11, stride=4, padding=2)
        assert conv.output_shape((3, 224, 224)) == (96, 55, 55)

    def test_strided_same_padding_uses_ceil(self):
        conv = Conv2D(name="c", out_channels=16, kernel_size=3, stride=2, padding="same")
        assert conv.output_shape((3, 33, 33)) == (16, 17, 17)

    def test_param_count_includes_bias_and_batchnorm(self):
        conv = Conv2D(name="c", out_channels=10, kernel_size=3, batch_norm=True)
        # weights 10*3*3*3 + bias 10 + bn 20
        assert conv.param_count((3, 8, 8)) == 270 + 10 + 20

    def test_macs_match_hand_calculation(self):
        conv = Conv2D(name="c", out_channels=4, kernel_size=3, padding="same")
        # 4 output channels * 8*8 spatial * 2 in_channels * 9
        assert conv.macs((2, 8, 8)) == 4 * 64 * 2 * 9

    def test_rejects_invalid_padding(self):
        with pytest.raises(ValueError):
            Conv2D(name="c", padding="full")
        with pytest.raises(ValueError):
            Conv2D(name="c", padding=-1)

    def test_rejects_non_positive_channels(self):
        with pytest.raises(ValueError):
            Conv2D(name="c", out_channels=0)

    def test_valid_padding_kernel_too_large_raises(self):
        conv = Conv2D(name="c", out_channels=4, kernel_size=9, padding="valid")
        with pytest.raises(ValueError):
            conv.output_shape((3, 5, 5))

    def test_requires_three_dimensional_input(self):
        conv = Conv2D(name="c")
        with pytest.raises(ValueError):
            conv.output_shape((100,))


class TestMaxPool2D:
    def test_default_stride_equals_pool_size(self):
        pool = MaxPool2D(name="p", pool_size=2)
        assert pool.effective_stride == 2
        assert pool.output_shape((64, 32, 32)) == (64, 16, 16)

    def test_overlapping_pooling(self):
        pool = MaxPool2D(name="p", pool_size=3, stride=2)
        assert pool.output_shape((96, 55, 55)) == (96, 27, 27)

    def test_tiny_input_clamps_to_one(self):
        pool = MaxPool2D(name="p", pool_size=2)
        assert pool.output_shape((8, 1, 1)) == (8, 1, 1)

    def test_has_no_parameters(self):
        pool = MaxPool2D(name="p")
        assert pool.param_count((8, 16, 16)) == 0


class TestDenseAndOthers:
    def test_dense_shapes_and_params(self):
        fc = Dense(name="fc", units=128)
        assert fc.output_shape((256,)) == (128,)
        assert fc.param_count((256,)) == 256 * 128 + 128
        assert fc.macs((256,)) == 256 * 128

    def test_dense_flattens_spatial_input(self):
        fc = Dense(name="fc", units=10)
        assert fc.param_count((4, 2, 2)) == 16 * 10 + 10

    def test_flatten_is_not_partition_candidate(self):
        flat = Flatten(name="flatten")
        assert not flat.is_partition_candidate
        assert flat.output_shape((4, 3, 3)) == (36,)
        assert flat.macs((4, 3, 3)) == 0

    def test_dropout_preserves_shape_and_costs_nothing(self):
        drop = Dropout(name="drop", rate=0.5)
        assert drop.output_shape((128,)) == (128,)
        assert drop.param_count((128,)) == 0
        assert not drop.is_partition_candidate

    def test_dropout_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(name="drop", rate=1.0)

    def test_flops_are_twice_macs(self):
        fc = Dense(name="fc", units=32)
        assert fc.flops((64,)) == 2 * fc.macs((64,))


class TestSerialization:
    @pytest.mark.parametrize(
        "layer",
        [
            Conv2D(name="c", out_channels=32, kernel_size=5, stride=2, padding=1, batch_norm=True),
            MaxPool2D(name="p", pool_size=3, stride=2),
            Dense(name="fc", units=99, activation="softmax"),
            Flatten(name="flat"),
            Dropout(name="drop", rate=0.3),
        ],
    )
    def test_round_trip(self, layer):
        rebuilt = layer_from_dict(layer.to_dict())
        assert rebuilt == layer

    def test_unknown_layer_type_rejected(self):
        with pytest.raises(ValueError):
            layer_from_dict({"layer_type": "lstm", "name": "x"})
