"""Tests for acquisition strategies and scalarisation utilities."""

import numpy as np
import pytest

from repro.optim.acquisition import (
    ACQUISITION_STRATEGIES,
    acquisition_scores,
    expected_improvement,
    lcb_scores,
    mean_scores,
    thompson_scores,
)
from repro.optim.gp import GaussianProcess
from repro.optim.scalarization import (
    chebyshev_scalarize,
    normalize_objectives,
    random_weights,
    weighted_sum_scalarize,
)


@pytest.fixture
def fitted_models(rng):
    X = rng.uniform(size=(25, 2))
    y1 = X[:, 0] ** 2 + 0.1 * X[:, 1]
    y2 = (1 - X[:, 0]) ** 2 + 0.1 * X[:, 1]
    return [
        GaussianProcess(noise_variance=1e-6).fit(X, y1),
        GaussianProcess(noise_variance=1e-6).fit(X, y2),
    ]


class TestScalarization:
    def test_random_weights_on_simplex(self, rng):
        for _ in range(10):
            weights = random_weights(3, rng)
            assert weights.shape == (3,)
            assert np.all(weights >= 0)
            assert weights.sum() == pytest.approx(1.0)

    def test_random_weights_requires_positive_count(self):
        with pytest.raises(ValueError):
            random_weights(0)

    def test_normalize_objectives_maps_to_unit_range(self, rng):
        Y = rng.uniform(10, 500, size=(20, 3))
        normalised, lower, upper = normalize_objectives(Y)
        assert normalised.min() == pytest.approx(0.0)
        assert normalised.max() == pytest.approx(1.0)
        assert np.all(lower <= upper)

    def test_normalize_constant_column_maps_to_half(self):
        Y = np.column_stack([np.full(5, 3.0), np.arange(5.0)])
        normalised, _, _ = normalize_objectives(Y)
        assert np.allclose(normalised[:, 0], 0.5)

    def test_normalize_with_explicit_bounds(self):
        Y = np.array([[5.0, 5.0]])
        normalised, _, _ = normalize_objectives(
            Y, lower=np.array([0.0, 0.0]), upper=np.array([10.0, 10.0])
        )
        assert np.allclose(normalised, 0.5)

    def test_chebyshev_prefers_balanced_solutions(self):
        weights = np.array([0.5, 0.5])
        balanced = chebyshev_scalarize(np.array([0.4, 0.4]), weights)
        lopsided = chebyshev_scalarize(np.array([0.0, 0.9]), weights)
        assert balanced < lopsided

    def test_chebyshev_matrix_input(self):
        values = np.array([[0.2, 0.4], [0.9, 0.1]])
        scores = chebyshev_scalarize(values, np.array([0.5, 0.5]))
        assert scores.shape == (2,)

    def test_chebyshev_validation(self):
        with pytest.raises(ValueError):
            chebyshev_scalarize(np.array([0.1, 0.2, 0.3]), np.array([0.5, 0.5]))
        with pytest.raises(ValueError):
            chebyshev_scalarize(np.array([0.1, 0.2]), np.array([-0.5, 1.5]))

    def test_weighted_sum(self):
        assert weighted_sum_scalarize(
            np.array([1.0, 2.0]), np.array([0.25, 0.75])
        ) == pytest.approx(1.75)
        with pytest.raises(ValueError):
            weighted_sum_scalarize(np.array([1.0]), np.array([0.5, 0.5]))


class TestAcquisitions:
    def test_thompson_scores_shape_and_variability(self, fitted_models, rng):
        pool = rng.uniform(size=(15, 2))
        scores_a = thompson_scores(fitted_models, pool, rng=rng)
        scores_b = thompson_scores(fitted_models, pool, rng=rng)
        assert scores_a.shape == (15, 2)
        assert not np.allclose(scores_a, scores_b)

    def test_lcb_is_optimistic(self, fitted_models, rng):
        pool = rng.uniform(size=(10, 2))
        lcb = lcb_scores(fitted_models, pool, beta=2.0)
        means = mean_scores(fitted_models, pool)
        assert np.all(lcb <= means + 1e-12)
        with pytest.raises(ValueError):
            lcb_scores(fitted_models, pool, beta=-1.0)

    def test_mean_scores_track_true_function_ordering(self, fitted_models):
        pool = np.array([[0.05, 0.5], [0.95, 0.5]])
        means = mean_scores(fitted_models, pool)
        # Objective 1 = x0^2 grows with x0; objective 2 shrinks.
        assert means[0, 0] < means[1, 0]
        assert means[0, 1] > means[1, 1]

    def test_expected_improvement_prefers_promising_points(self, fitted_models):
        model = fitted_models[0]
        pool = np.array([[0.01, 0.0], [0.99, 0.0]])
        neg_ei = expected_improvement(model, pool, best_observed=0.3)
        # Lower scores are better; x0 ~ 0 has low predicted objective value.
        assert neg_ei[0] < neg_ei[1]
        assert np.all(neg_ei <= 0)

    def test_dispatch_random_strategy(self, fitted_models, rng):
        pool = rng.uniform(size=(8, 2))
        scores = acquisition_scores("random", fitted_models, pool, rng=0)
        again = acquisition_scores("random", fitted_models, pool, rng=0)
        assert scores.shape == (8, 2)
        assert np.allclose(scores, again)

    def test_dispatch_validates_strategy(self, fitted_models, rng):
        with pytest.raises(ValueError):
            acquisition_scores("bogus", fitted_models, rng.uniform(size=(3, 2)))

    def test_all_strategies_produce_finite_scores(self, fitted_models, rng):
        pool = rng.uniform(size=(6, 2))
        front = np.array([[0.2, 0.8], [0.6, 0.3]])  # required by "epdc" only
        for strategy in ACQUISITION_STRATEGIES:
            scores = acquisition_scores(
                strategy, fitted_models, pool, rng=rng, front=front
            )
            assert scores.shape == (6, 2)
            assert np.all(np.isfinite(scores))

    def test_epdc_requires_a_front(self, fitted_models, rng):
        with pytest.raises(ValueError, match="front"):
            acquisition_scores("epdc", fitted_models, rng.uniform(size=(3, 2)))
