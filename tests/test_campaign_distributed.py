"""Distributed campaign service: sharded stores, leases, workers, executors."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.api.envelopes import SearchRequest, request_fingerprint
from repro.api.registry import RegistryError
from repro.api.scenario import Scenario
from repro.api.session import run_search
from repro.campaign import (
    CampaignSpec,
    RunStore,
    ShardedRunStore,
    StoreError,
    merge_stores,
    open_store,
    run_campaign,
    run_worker,
)
from repro.campaign.errors import (
    ERROR_CODES,
    AuditLog,
    ErrorEnvelope,
    classify_error,
    summarize_audit,
)
from repro.campaign.executors import EXECUTORS, resolve_executor
from repro.campaign.leases import LeaseBoard
from repro.campaign.manifest import CampaignManifest, resolve_backoff
from repro.campaign.sharded import export_metrics, shard_key

#: Budgets small enough that one run is milliseconds.
FAST = dict(
    num_initial=4,
    num_iterations=2,
    candidate_pool_size=16,
    predictor_samples_per_type=40,
)

SPEC = CampaignSpec(
    scenarios=("wifi-3mbps/jetson-tx2-gpu",),
    strategies=("lens", "random"),
    seeds=(0, 1),
    **FAST,
)

SMALL_SPEC = CampaignSpec(
    scenarios=("wifi-3mbps/jetson-tx2-gpu",),
    strategies=("random",),
    seeds=(0, 1),
    **FAST,
)


def _request(**overrides) -> SearchRequest:
    fields = dict(FAST, scenario="wifi-3mbps/jetson-tx2-gpu", strategy="random", seed=0)
    fields.update(overrides)
    return SearchRequest(**fields)


def _metric_rows(store):
    """Per-candidate metric triples rounded past the engine-cache ULP drift."""
    rows = {}
    for fingerprint in store.fingerprints():
        outcome = store.get(fingerprint)
        rows[fingerprint] = [
            (round(c.error_percent, 6), round(c.latency_s, 6), round(c.energy_j, 6))
            for c in outcome.candidates
        ]
    return rows


# ---------------------------------------------------------------------- sharded store


class TestShardedStore:
    def test_routing_is_deterministic_across_reopen(self, tmp_path):
        store = ShardedRunStore(tmp_path / "store")
        fingerprints = [
            store.append(run_search(_request(seed=seed))) for seed in (0, 1, 2)
        ]
        keys = store.shard_keys()
        reopened = ShardedRunStore(tmp_path / "store")
        assert reopened.fingerprints() == store.fingerprints()
        assert reopened.shard_keys() == keys
        for fingerprint in fingerprints:
            assert reopened.get(fingerprint).request.fingerprint() == fingerprint
        # same (scenario, space) -> same shard key, always
        assert shard_key("a/b", "s") == shard_key("a/b", "s")
        assert shard_key("a/b", "s") != shard_key("a/b", "t")

    def test_cells_route_to_per_context_shards(self, tmp_path):
        store = ShardedRunStore(tmp_path / "store")
        store.append(run_search(_request(scenario="wifi-3mbps/jetson-tx2-gpu")))
        store.append(run_search(_request(scenario="lte-3mbps/jetson-tx2-gpu")))
        assert len(store.shard_keys()) == 2
        assert len(store) == 2

    def test_duplicate_append_raises(self, tmp_path):
        store = ShardedRunStore(tmp_path / "store")
        outcome = run_search(_request())
        store.append(outcome)
        with pytest.raises(StoreError, match="already stored"):
            store.append(outcome)

    def test_refresh_sees_other_writers(self, tmp_path):
        writer = ShardedRunStore(tmp_path / "store")
        reader = ShardedRunStore(tmp_path / "store")
        fingerprint = writer.append(run_search(_request()))
        assert fingerprint not in reader
        reader.refresh()
        assert fingerprint in reader
        assert reader.get(fingerprint).request.fingerprint() == fingerprint

    def test_torn_tail_in_shard_is_ignored_then_compacted(self, tmp_path):
        store = ShardedRunStore(tmp_path / "store")
        fingerprint = store.append(run_search(_request()))
        shard_path = next((tmp_path / "store" / "shards").glob("*.jsonl"))
        with shard_path.open("ab") as handle:
            handle.write(b'{"fingerprint": "torn')  # crash mid-append

        reopened = ShardedRunStore(tmp_path / "store")
        assert reopened.fingerprints() == [fingerprint]
        stats = reopened.compact()
        assert stats["dropped_torn_bytes"] > 0
        assert reopened.fingerprints() == [fingerprint]
        # the shard is pristine again: every line intact
        for raw in shard_path.open("rb"):
            json.loads(raw)

    def test_corrupt_middle_line_skipped_and_counted(self, tmp_path):
        store = ShardedRunStore(tmp_path / "store")
        first = store.append(run_search(_request(seed=0)))
        shard_path = next((tmp_path / "store" / "shards").glob("*.jsonl"))
        with shard_path.open("ab") as handle:
            handle.write(b"garbage that is not json\n")
        store.refresh()
        second = store.append(run_search(_request(seed=1)))

        reopened = ShardedRunStore(tmp_path / "store")
        assert reopened.fingerprints() == [first, second]
        assert reopened.summary()["corrupt_lines"] == 1
        stats = reopened.compact()
        assert stats["dropped_corrupt_lines"] == 1
        assert ShardedRunStore(tmp_path / "store").summary()["corrupt_lines"] == 0

    def test_superseded_duplicate_resolves_latest_wins(self, tmp_path):
        store = ShardedRunStore(tmp_path / "store")
        outcome = run_search(_request())
        fingerprint = store.append(outcome)
        shard_path = next((tmp_path / "store" / "shards").glob("*.jsonl"))
        # a racing peer re-appends the same cell (reclaimed-lease worst case)
        line = shard_path.read_bytes()
        with shard_path.open("ab") as handle:
            handle.write(line)

        reopened = ShardedRunStore(tmp_path / "store")
        assert reopened.fingerprints() == [fingerprint]
        assert reopened.summary()["superseded"] == 1
        stats = reopened.compact()
        assert stats["dropped_superseded"] == 1
        assert len(shard_path.read_bytes().splitlines()) == 1

    def test_paginated_outcomes(self, tmp_path):
        store = ShardedRunStore(tmp_path / "store")
        for seed in range(4):
            store.append(run_search(_request(seed=seed)))
        everything = [o.request.fingerprint() for o in store.outcomes()]
        assert len(everything) == 4
        page1 = [o.request.fingerprint() for o in store.outcomes(offset=0, limit=3)]
        page2 = [o.request.fingerprint() for o in store.outcomes(offset=3, limit=3)]
        assert page1 + page2 == everything
        # pagination windows are stable across reopen
        reopened = ShardedRunStore(tmp_path / "store")
        assert [
            o.request.fingerprint() for o in reopened.outcomes(offset=1, limit=2)
        ] == everything[1:3]
        with pytest.raises(ValueError, match="non-negative"):
            list(store.outcomes(offset=-1))

    def test_open_store_detects_format(self, tmp_path):
        single = RunStore(tmp_path / "single")
        single.append(run_search(_request()))
        sharded = ShardedRunStore(tmp_path / "sharded")
        sharded.append(run_search(_request()))
        assert isinstance(open_store(tmp_path / "single"), RunStore)
        assert isinstance(open_store(tmp_path / "sharded"), ShardedRunStore)
        assert isinstance(open_store(tmp_path / "new", sharded=True), ShardedRunStore)
        with pytest.raises(StoreError, match="sharded"):
            open_store(tmp_path / "sharded", sharded=False)
        with pytest.raises(StoreError, match="single-file"):
            open_store(tmp_path / "single", sharded=True)

    def test_merge_stores_is_idempotent(self, tmp_path):
        source = RunStore(tmp_path / "source")
        for seed in (0, 1):
            source.append(run_search(_request(seed=seed)))
        dest = ShardedRunStore(tmp_path / "dest")
        assert merge_stores([source], dest) == {"merged": 2, "skipped": 0}
        assert merge_stores([source], dest) == {"merged": 0, "skipped": 2}
        assert sorted(dest.fingerprints()) == sorted(source.fingerprints())

    def test_export_metrics_columnar(self, tmp_path):
        store = ShardedRunStore(tmp_path / "store")
        for seed in (0, 1):
            store.append(run_search(_request(seed=seed)))
        payload = export_metrics(store)
        assert payload["num_groups"] == 2
        for group in payload["groups"]:
            assert group["scenario"] == "wifi-3mbps/jetson-tx2-gpu"
            n = len(group["latency_s"])
            assert n > 0
            assert len(group["energy_j"]) == n
            assert len(group["error_percent"]) == n
        # groups are sorted by (scenario, space, strategy, seed)
        seeds = [group["seed"] for group in payload["groups"]]
        assert seeds == sorted(seeds)


# ---------------------------------------------------------------------- errors / audit


class TestErrorEnvelopes:
    def test_classification_table(self):
        assert classify_error(RegistryError("x")) == "E_REGISTRY"
        assert classify_error(StoreError("x")) == "E_STORE"
        assert classify_error(TimeoutError()) == "E_TIMEOUT"
        assert classify_error(MemoryError()) == "E_SYSTEM"
        assert classify_error(ValueError("x")) == "E_VALIDATION"
        assert classify_error(RuntimeError("x")) == "E_EXECUTION"
        for code in ("E_WORKER_LOST", "E_TIMEOUT", "E_SYSTEM"):
            assert ERROR_CODES[code][1], f"{code} must be retryable"

    def test_final_flag_follows_retry_budget(self):
        retryable = ErrorEnvelope.from_exception(
            TimeoutError("slow"), attempt=1, max_attempts=3
        )
        assert retryable.retryable and not retryable.final
        exhausted = ErrorEnvelope.from_exception(
            TimeoutError("slow"), attempt=3, max_attempts=3
        )
        assert exhausted.final
        deterministic = ErrorEnvelope.from_exception(
            ValueError("bad"), attempt=1, max_attempts=3
        )
        assert deterministic.final and not deterministic.retryable

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown error code"):
            ErrorEnvelope(code="E_NOPE", message="x")

    def test_audit_log_round_trip_and_torn_tail(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl")
        for attempt in (1, 2):
            log.append(
                ErrorEnvelope.from_exception(
                    TimeoutError("slow"),
                    attempt=attempt,
                    fingerprint="abc",
                    worker="w0",
                    max_attempts=2,
                )
            )
        with log.path.open("ab") as handle:
            handle.write(b'{"code": "torn')
        records = log.records()
        assert len(records) == 2
        assert log.attempts("abc") == 2
        assert log.last("abc").final
        summary = summarize_audit(records)
        assert summary["by_code"] == {"E_TIMEOUT": 2}
        assert summary["failed_cells"] == ["abc"]
        assert summary["retries"] == 1
        assert summary["workers"] == ["w0"]

    def test_backoff_is_exponential(self):
        base = resolve_backoff(100.0, 1, 0.5)
        assert base == pytest.approx(100.5)
        assert resolve_backoff(100.0, 3, 0.5) == pytest.approx(102.0)


# ---------------------------------------------------------------------- leases


class TestLeases:
    def test_claim_is_exclusive(self, tmp_path):
        a = LeaseBoard(tmp_path / "leases", "a", ttl_s=30.0)
        b = LeaseBoard(tmp_path / "leases", "b", ttl_s=30.0)
        lease = a.claim("cell-1")
        assert lease is not None and lease.worker == "a"
        assert b.claim("cell-1") is None
        a.release(lease)
        assert b.claim("cell-1").worker == "b"

    def test_expired_lease_is_reclaimed_from_dead_worker(self, tmp_path):
        board = LeaseBoard(tmp_path / "leases", "survivor", ttl_s=0.2)
        # a peer claimed the cell and died without releasing
        dead = LeaseBoard(tmp_path / "leases", "dead", ttl_s=0.2)
        stale = dead.claim("cell-1")
        assert stale is not None
        assert board.claim("cell-1") is None  # still fresh
        time.sleep(0.3)  # heartbeat window elapses with no heartbeat
        reclaimed = board.claim("cell-1")
        assert reclaimed is not None
        assert reclaimed.worker == "survivor"
        assert reclaimed.reclaims == 1

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        board = LeaseBoard(tmp_path / "leases", "w0", ttl_s=0.3)
        lease = board.claim("cell-1")
        for _ in range(3):
            time.sleep(0.15)
            lease = board.heartbeat(lease)
        peer = LeaseBoard(tmp_path / "leases", "peer", ttl_s=0.3)
        assert peer.claim("cell-1") is None  # heartbeats kept it fresh

    def test_concurrent_claims_have_one_winner(self, tmp_path):
        winners = []
        barrier = threading.Barrier(4)

        def contender(name):
            board = LeaseBoard(tmp_path / "leases", name, ttl_s=30.0)
            barrier.wait()
            lease = board.claim("cell-1")
            if lease is not None:
                winners.append(lease.worker)

        threads = [
            threading.Thread(target=contender, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(winners) == 1


# ---------------------------------------------------------------------- workers


class TestPullWorkers:
    def test_two_concurrent_workers_store_each_cell_exactly_once(self, tmp_path):
        store_dir = tmp_path / "shared"
        ShardedRunStore(store_dir)
        manifest = CampaignManifest.from_requests(
            SPEC.requests(), ttl_s=10.0, poll_s=0.05
        )
        manifest.write(store_dir)

        reports = {}

        def pull(worker_id):
            reports[worker_id] = run_worker(store_dir, worker_id=worker_id)

        threads = [
            threading.Thread(target=pull, args=(f"w{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        store = ShardedRunStore(store_dir)
        assert set(store.fingerprints()) == set(manifest.cells)
        # exactly-once at the raw-line level: no duplicate appends at all
        total_lines = sum(
            sum(1 for _ in path.open("rb"))
            for path in (store_dir / "shards").glob("*.jsonl")
        )
        assert total_lines == len(manifest.cells)
        assert sum(r.executed for r in reports.values()) == len(manifest.cells)
        # all leases released
        assert list((store_dir / "leases").glob("*.lease")) == []

    def test_dead_workers_stored_cell_is_not_reexecuted(self, tmp_path):
        """A worker stored a cell but died before releasing its lease."""
        store_dir = tmp_path / "shared"
        store = ShardedRunStore(store_dir)
        requests = SMALL_SPEC.requests()
        manifest = CampaignManifest.from_requests(
            requests, ttl_s=0.2, poll_s=0.05
        )
        manifest.write(store_dir)

        dead_fp = request_fingerprint(requests[0])
        store.append(run_search(requests[0]), fingerprint=dead_fp)
        dead_board = LeaseBoard(store_dir / "leases", "dead", ttl_s=0.2)
        assert dead_board.claim(dead_fp) is not None  # never released
        time.sleep(0.3)

        report = run_worker(store_dir, worker_id="survivor")
        final = ShardedRunStore(store_dir)
        assert set(final.fingerprints()) == set(manifest.cells)
        assert report.executed == len(requests) - 1  # stored cell untouched
        # still exactly one record for the dead worker's cell
        lines = sum(
            sum(1 for _ in path.open("rb"))
            for path in (store_dir / "shards").glob("*.jsonl")
        )
        assert lines == len(requests)

    def test_reclaimed_finished_cell_is_a_noop(self, tmp_path, monkeypatch):
        """The idempotence re-check under the lease: a peer finished the
        cell between this worker's store refresh and its claim."""
        import repro.campaign.worker as worker_mod

        store_dir = tmp_path / "shared"
        ShardedRunStore(store_dir)
        request = SMALL_SPEC.requests()[0]
        fingerprint = request_fingerprint(request)
        manifest = CampaignManifest.from_requests(
            [request], ttl_s=10.0, poll_s=0.05
        )
        manifest.write(store_dir)
        outcome = run_search(request)

        real_claim = worker_mod.LeaseBoard.claim

        def racing_claim(self, fp):
            lease = real_claim(self, fp)
            if lease is not None:
                peer = ShardedRunStore(store_dir)
                if fp not in peer:  # the racing peer lands its append first
                    peer.append(outcome, fingerprint=fp)
            return lease

        monkeypatch.setattr(worker_mod.LeaseBoard, "claim", racing_claim)
        report = run_worker(store_dir, worker_id="late")
        assert report.skipped == 1  # re-claimed finished cell: no-op
        assert report.executed == 0
        shard_lines = sum(
            sum(1 for _ in path.open("rb"))
            for path in (store_dir / "shards").glob("*.jsonl")
        )
        assert shard_lines == 1
        assert ShardedRunStore(store_dir).fingerprints() == [fingerprint]

    def test_failed_cell_is_audited_and_final(self, tmp_path):
        store_dir = tmp_path / "shared"
        ShardedRunStore(store_dir)
        bad = _request().replace(
            scenario=Scenario(name="ghost/nowhere", device="ghost-device"),
        )
        manifest = CampaignManifest.from_requests(
            [bad], ttl_s=10.0, poll_s=0.05, max_attempts=3, backoff_base_s=0.01
        )
        manifest.write(store_dir)
        report = run_worker(store_dir, worker_id="w0")
        assert report.failed >= 1
        assert report.executed == 0
        store = ShardedRunStore(store_dir)
        records = store.audit_records()
        assert records, "failure must be audited"
        assert records[-1].final
        assert records[-1].code == "E_REGISTRY"
        assert len(store) == 0


# ---------------------------------------------------------------------- executors


class TestExecutors:
    def test_registry_and_resolution(self):
        assert set(EXECUTORS.names()) >= {
            "serial", "process-pool", "asyncio", "pull-worker",
        }
        assert resolve_executor(None, 1).name == "serial"
        assert resolve_executor(None, 4).name == "process-pool"
        assert resolve_executor("asyncio", 2).name == "asyncio"
        with pytest.raises(RegistryError, match="serial"):
            resolve_executor("serail", 1)
        with pytest.raises(TypeError, match="executor"):
            resolve_executor(42, 1)

    def test_pull_worker_requires_sharded_store(self, tmp_path):
        with pytest.raises(StoreError, match="sharded"):
            run_campaign(
                SMALL_SPEC,
                RunStore(tmp_path / "single"),
                executor="pull-worker",
                workers=2,
            )

    def test_asyncio_executor_matches_serial(self, tmp_path):
        serial = RunStore(tmp_path / "serial")
        run_campaign(SMALL_SPEC, serial)
        store = RunStore(tmp_path / "async")
        result = run_campaign(SMALL_SPEC, store, executor="asyncio", workers=2)
        assert result.executor == "asyncio"
        assert sorted(store.fingerprints()) == sorted(serial.fingerprints())
        assert _metric_rows(store) == _metric_rows(serial)

    def test_pull_worker_executor_matches_serial(self, tmp_path):
        serial = RunStore(tmp_path / "serial")
        run_campaign(SMALL_SPEC, serial)
        store = ShardedRunStore(tmp_path / "pull")
        result = run_campaign(
            SMALL_SPEC,
            store,
            executor="pull-worker",
            workers=2,
            executor_options={"ttl_s": 10.0, "poll_s": 0.1},
        )
        assert result.executor == "pull-worker"
        assert len(result.executed) == len(SMALL_SPEC.requests())
        assert sorted(store.fingerprints()) == sorted(serial.fingerprints())
        assert _metric_rows(store) == _metric_rows(serial)


# ---------------------------------------------------------------------- on_error


class TestOnError:
    def test_continue_records_envelope_and_keeps_going(self, tmp_path):
        good = SMALL_SPEC.requests()
        bad = good[0].replace(
            scenario=Scenario(name="ghost/nowhere", device="ghost-device"),
        )
        store = RunStore(tmp_path / "store")
        result = run_campaign([bad] + good, store, on_error="continue")
        assert len(result.failed) == 1
        assert result.failed[0].envelope.code == "E_REGISTRY"
        summary = result.summary()
        assert summary["failed"] == 1
        assert summary["failed_cells"] == [result.failed[0].fingerprint]
        # the bad cell did not stop the good ones
        assert sorted(store.fingerprints()) == sorted(
            request_fingerprint(r) for r in good
        )
        # and the failure is audited in the store
        assert len(store.audit_records()) == 1

    def test_fail_default_stops_and_raises(self, tmp_path):
        good = SMALL_SPEC.requests()
        bad = good[0].replace(
            scenario=Scenario(name="ghost/nowhere", device="ghost-device"),
        )
        store = RunStore(tmp_path / "store")
        with pytest.raises(RuntimeError, match="campaign cell .* failed"):
            run_campaign([bad] + good, store)
        assert len(store) == 0  # serial stops at the first (bad) cell

    def test_invalid_on_error_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="on_error"):
            run_campaign(SMALL_SPEC, RunStore(tmp_path / "s"), on_error="retry")
