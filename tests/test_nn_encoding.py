"""Tests for repro.nn.encoding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.encoding import EncodingScheme, Gene


def simple_scheme() -> EncodingScheme:
    return EncodingScheme(
        [
            Gene("layers", (1, 2, 3)),
            Gene("kernel", (3, 5, 7)),
            Gene("filters", (24, 36, 64, 96, 128, 256)),
            Gene("pool", (False, True)),
        ]
    )


class TestGene:
    def test_cardinality_and_lookup(self):
        gene = Gene("kernel", (3, 5, 7))
        assert gene.cardinality == 3
        assert gene.value(1) == 5
        assert gene.index_of(7) == 2

    def test_rejects_empty_or_duplicate_choices(self):
        with pytest.raises(ValueError):
            Gene("x", ())
        with pytest.raises(ValueError):
            Gene("x", (1, 1))

    def test_value_out_of_range(self):
        with pytest.raises(IndexError):
            Gene("x", (1, 2)).value(5)

    def test_index_of_unknown_value(self):
        with pytest.raises(ValueError):
            Gene("x", (1, 2)).index_of(9)


class TestEncodingScheme:
    def test_rejects_duplicate_gene_names(self):
        with pytest.raises(ValueError):
            EncodingScheme([Gene("a", (1,)), Gene("a", (2,))])

    def test_total_combinations(self):
        assert simple_scheme().total_combinations() == 3 * 3 * 6 * 2

    def test_values_round_trip(self):
        scheme = simple_scheme()
        indices = np.array([2, 0, 5, 1])
        values = scheme.values(indices)
        assert values == {"layers": 3, "kernel": 3, "filters": 256, "pool": True}
        assert np.array_equal(scheme.indices_from_values(values), indices)

    def test_indices_from_values_requires_all_genes(self):
        with pytest.raises(ValueError, match="missing"):
            simple_scheme().indices_from_values({"layers": 1})

    def test_validate_rejects_wrong_length_and_range(self):
        scheme = simple_scheme()
        with pytest.raises(ValueError):
            scheme.validate_indices([0, 0, 0])
        with pytest.raises(ValueError):
            scheme.validate_indices([0, 0, 9, 0])

    def test_unit_projection_bounds_and_round_trip(self):
        scheme = simple_scheme()
        indices = scheme.sample_indices(0)
        unit = scheme.to_unit(indices)
        assert np.all(unit >= 0) and np.all(unit <= 1)
        assert np.array_equal(scheme.from_unit(unit), indices)

    def test_single_choice_gene_maps_to_half(self):
        scheme = EncodingScheme([Gene("only", (42,)), Gene("pick", (1, 2))])
        unit = scheme.to_unit([0, 1])
        assert unit[0] == 0.5
        assert unit[1] == 1.0

    def test_mutation_changes_at_least_one_gene(self):
        scheme = simple_scheme()
        rng = np.random.default_rng(0)
        base = scheme.sample_indices(rng)
        for _ in range(10):
            mutated = scheme.mutate(base, rng)
            assert scheme.hamming_distance(base, mutated) >= 1

    def test_sampling_is_reproducible(self):
        scheme = simple_scheme()
        assert np.array_equal(scheme.sample_indices(5), scheme.sample_indices(5))

    def test_gene_lookup_by_name(self):
        scheme = simple_scheme()
        assert scheme.gene("filters").cardinality == 6
        assert scheme.gene_position("pool") == 3
        with pytest.raises(KeyError):
            scheme.gene("missing")

    def test_describe_lists_genes(self):
        text = simple_scheme().describe()
        assert "filters" in text and "kernel" in text


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_sampled_indices_always_valid_and_unit_round_trips(seed):
    scheme = simple_scheme()
    indices = scheme.sample_indices(seed)
    validated = scheme.validate_indices(indices)
    assert np.array_equal(validated, indices)
    assert np.array_equal(scheme.from_unit(scheme.to_unit(indices)), indices)
