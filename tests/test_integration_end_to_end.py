"""End-to-end integration tests exercising the whole pipeline together.

These tests mirror the paper's experimental flow at a miniature scale:
train predictors, run LENS and the Traditional baseline on the same search
space and wireless expectation, compare frontiers, count criteria, and run
the runtime analysis on a frontier model.
"""

import numpy as np
import pytest

from repro.analysis.criteria import compare_criteria, paper_criteria
from repro.analysis.pareto_metrics import compare_fronts
from repro.analysis.runtime_eval import run_runtime_study
from repro.core.lens import LensConfig, LensSearch
from repro.core.traditional import TraditionalSearch
from repro.nn.search_space import LensSearchSpace
from repro.utils.serialization import dump_json, load_json, to_jsonable
from repro.wireless.traces import generate_lte_trace


@pytest.fixture(scope="module")
def pipeline():
    """Run a miniature LENS + Traditional experiment once for all tests."""
    space = LensSearchSpace(
        num_blocks=4,
        layers_per_block=(1, 2),
        kernel_sizes=(3, 5),
        filter_counts=(24, 64, 128),
        fc_units=(256, 2048),
        min_pool_layers=3,
    )
    config = LensConfig(
        wireless_technology="wifi",
        expected_uplink_mbps=3.0,
        num_initial=8,
        num_iterations=16,
        candidate_pool_size=48,
        predictor_samples_per_type=80,
        seed=7,
    )
    lens = LensSearch(search_space=space, config=config)
    lens_result = lens.run()
    traditional = TraditionalSearch(
        search_space=space, config=config, predictor=lens.predictor
    )
    traditional_result = traditional.run()
    partitioned = traditional.partition_result(traditional_result)
    return {
        "space": space,
        "config": config,
        "lens": lens,
        "lens_result": lens_result,
        "traditional": traditional,
        "traditional_result": traditional_result,
        "partitioned": partitioned,
    }


def test_lens_never_reports_higher_energy_than_unpartitioned_traditional(pipeline):
    """The qualitative claim behind Fig. 6: LENS charges each candidate its best
    deployment, so its energy floor can only be at or below the Traditional
    search's floor, and partition-aware candidates must beat their own
    All-Edge cost whenever a split is selected."""
    lens_min_energy = min(c.energy_j for c in pipeline["lens_result"])
    traditional_min_energy = min(c.energy_j for c in pipeline["traditional_result"])
    assert lens_min_energy <= traditional_min_energy
    for candidate in pipeline["lens_result"]:
        if candidate.best_energy_option.is_split:
            assert candidate.energy_j < candidate.all_edge_energy_j


def test_lens_frontier_not_dominated_by_unpartitioned_traditional(pipeline):
    comparison = compare_fronts(
        pipeline["lens_result"], pipeline["traditional_result"], ("error_percent", "energy_j")
    )
    assert comparison.b_dominates_a_fraction <= 0.5
    assert comparison.combined_fraction_a >= 0.4


def test_offloading_and_splits_shape_the_full_search_space(pipeline):
    """The effect LENS exploits must exist in the paper's full search space at
    the 3 Mbps WiFi expectation: most randomly sampled candidates prefer some
    form of offloading for energy, and architectures with a cheap convolutional
    prefix followed by heavy fully-connected layers prefer a genuine split."""
    full_space = LensSearchSpace()
    analyzer = pipeline["lens"].analyzer

    offload_count = 0
    for seed in range(20):
        architecture = full_space.decode_for_performance(full_space.sample(seed))
        evaluation = analyzer.evaluate(architecture)
        if evaluation.best_energy.option.kind != "all_edge":
            offload_count += 1
    assert offload_count > 0

    # A thin-prefix / fat-FC candidate: every block one 3x3 layer of 24 filters
    # with pooling, then a single 8192-unit FC — the archetype that benefits
    # from splitting after the last pooling layer.
    values = {}
    for block in range(1, 6):
        values[f"block{block}_layers"] = 1
        values[f"block{block}_kernel"] = 3
        values[f"block{block}_filters"] = 24
        values[f"block{block}_pool"] = True
    values.update(
        {"fc1_present": True, "fc1_units": 8192, "fc2_present": False, "fc2_units": 256}
    )
    genotype = full_space.encoding.indices_from_values(values)
    architecture = full_space.decode_for_performance(genotype)
    evaluation = analyzer.evaluate(architecture)
    assert evaluation.best_energy.option.is_split
    assert evaluation.best_energy.energy_j < evaluation.all_edge.energy_j
    assert evaluation.best_energy.energy_j < evaluation.all_cloud.energy_j


def test_partitioned_traditional_still_leaves_room_for_lens(pipeline):
    comparison = compare_fronts(
        pipeline["lens_result"], pipeline["partitioned"], ("error_percent", "energy_j")
    )
    # The combined frontier should contain LENS members (the paper reports 76%).
    assert comparison.combined_fraction_a > 0.0
    assert 0.0 <= comparison.a_dominates_b_fraction <= 1.0


def test_criteria_comparison_runs_over_paper_thresholds(pipeline):
    full_partitioned = pipeline["traditional"].partition_result(
        pipeline["traditional_result"], pareto_only=False
    )
    comparisons = compare_criteria(
        pipeline["lens_result"], full_partitioned, paper_criteria()
    )
    assert len(comparisons) == 5
    assert all(c.count_a >= 0 and c.count_b >= 0 for c in comparisons)


def test_runtime_study_on_a_frontier_model(pipeline):
    lens = pipeline["lens"]
    front = pipeline["lens_result"].pareto_candidates(("error_percent", "energy_j"))
    model = front[0]
    architecture = pipeline["space"].decode_for_performance(model.genotype)
    trace = generate_lte_trace(num_samples=20, mean_mbps=8.0, seed=1)
    study = run_runtime_study(
        "model A", architecture, lens.predictor, lens.channel, trace, metric="energy"
    )
    dynamic = study.comparison.cumulative["dynamic"]
    assert all(dynamic <= value + 1e-12 for value in study.comparison.cumulative.values())


def test_results_serialise_to_json(pipeline, tmp_path):
    path = dump_json(pipeline["lens_result"].to_dict(), tmp_path / "lens.json")
    payload = load_json(path)
    assert payload["label"] == "lens"
    assert len(payload["candidates"]) == len(pipeline["lens_result"])
    # The whole comparison object is JSON-serialisable too.
    comparison = compare_fronts(pipeline["lens_result"], pipeline["partitioned"])
    assert to_jsonable(comparison.to_dict())


def test_search_is_fully_reproducible_end_to_end(pipeline):
    config = pipeline["config"]
    rerun = LensSearch(
        search_space=pipeline["space"], config=config, predictor=pipeline["lens"].predictor
    ).run()
    original = pipeline["lens_result"].objective_matrix(("error_percent", "energy_j"))
    repeated = rerun.objective_matrix(("error_percent", "energy_j"))
    assert np.allclose(original, repeated)
