"""Tests for the MOBO loop and the random-search baseline on synthetic problems."""

import numpy as np
import pytest

from repro.optim.mobo import MultiObjectiveBayesianOptimizer, OptimizationResult
from repro.optim.pareto import coverage, hypervolume_2d, pareto_front_mask
from repro.optim.random_search import RandomSearch

# A small bi-objective problem over a discrete grid (a ZDT1-like trade-off).
GRID = 21


def _sample(rng):
    return np.array([rng.integers(0, GRID), rng.integers(0, GRID)])


def _features(candidate):
    return np.asarray(candidate, dtype=float) / (GRID - 1)


def _objectives(candidate):
    x = np.asarray(candidate, dtype=float) / (GRID - 1)
    f1 = x[0]
    f2 = (1 + x[1]) * (1 - np.sqrt(x[0] / (1 + x[1])))
    return np.array([f1, f2]), {"x": x.tolist()}


def _make_optimizer(**overrides):
    kwargs = dict(
        sample_fn=_sample,
        feature_fn=_features,
        objective_fn=_objectives,
        num_objectives=2,
        num_initial=6,
        num_iterations=12,
        candidate_pool_size=40,
        seed=0,
    )
    kwargs.update(overrides)
    return MultiObjectiveBayesianOptimizer(**kwargs)


class TestMOBO:
    def test_runs_and_reports_every_evaluation(self):
        result = _make_optimizer().run()
        assert isinstance(result, OptimizationResult)
        assert len(result) == 18
        phases = {p.phase for p in result.points}
        assert phases == {"init", "bo"}
        assert result.objective_matrix().shape == (18, 2)

    def test_metadata_is_preserved(self):
        result = _make_optimizer().run()
        assert all("x" in p.metadata for p in result.points)

    def test_pareto_helpers_consistent(self):
        result = _make_optimizer().run()
        mask = result.pareto_mask()
        assert mask.sum() == len(result.pareto_points())
        front = result.pareto_objectives()
        assert np.array_equal(front, result.objective_matrix()[mask])

    def test_reproducible_with_same_seed(self):
        a = _make_optimizer(seed=3).run().objective_matrix()
        b = _make_optimizer(seed=3).run().objective_matrix()
        assert np.array_equal(a, b)

    def test_avoids_duplicate_candidates(self):
        result = _make_optimizer(num_iterations=20).run()
        keys = [tuple(p.candidate.tolist()) for p in result.points]
        # A few duplicates are tolerated (space exhaustion fallback) but the
        # bulk of evaluations must be unique.
        assert len(set(keys)) >= len(keys) - 2

    def test_bo_beats_random_search_on_hypervolume(self):
        bo = _make_optimizer(num_initial=8, num_iterations=25, seed=1).run()
        rs = RandomSearch(
            sample_fn=_sample,
            feature_fn=_features,
            objective_fn=_objectives,
            num_objectives=2,
            num_evaluations=33,
            seed=1,
        ).run()
        reference = [1.2, 1.2]
        hv_bo = hypervolume_2d(bo.pareto_objectives(), reference)
        hv_rs = hypervolume_2d(rs.pareto_objectives(), reference)
        # The model-based search should not be clearly worse than random.
        assert hv_bo >= hv_rs * 0.9

    def test_best_for_objective(self):
        result = _make_optimizer().run()
        best0 = result.best_for_objective(0)
        assert best0.objectives[0] == result.objective_matrix()[:, 0].min()
        with pytest.raises(IndexError):
            result.best_for_objective(5)

    def test_callback_invoked_per_evaluation(self):
        calls = []
        _make_optimizer(callback=lambda i, p, a: calls.append(i)).run()
        assert calls == list(range(18))

    def test_ucb_and_random_acquisitions_run(self):
        for acquisition in ("ucb", "mean", "random"):
            result = _make_optimizer(acquisition=acquisition, num_iterations=4).run()
            assert len(result) == 10

    def test_neighbor_fn_is_used(self):
        def neighbor_fn(candidate, count, rng):
            return [np.clip(candidate + rng.integers(-1, 2, size=2), 0, GRID - 1) for _ in range(count)]

        result = _make_optimizer(neighbor_fn=neighbor_fn, num_iterations=6).run()
        assert len(result) == 12

    def test_archive_matches_result_front(self):
        optimizer = _make_optimizer()
        result = optimizer.run()
        archive_objectives = optimizer.archive.objective_matrix()
        front = result.pareto_objectives()
        # Same set of non-dominated objective vectors.
        assert coverage(front, archive_objectives) == 0.0
        assert coverage(archive_objectives, front) == 0.0
        assert archive_objectives.shape[0] == front.shape[0]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            _make_optimizer(num_initial=1)
        with pytest.raises(ValueError):
            _make_optimizer(num_objectives=0)
        with pytest.raises(ValueError):
            _make_optimizer(acquisition="bogus")
        with pytest.raises(ValueError):
            _make_optimizer(candidate_pool_size=1)

    def test_objective_shape_mismatch_detected(self):
        bad = _make_optimizer(objective_fn=lambda c: np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError):
            bad.run()

    def test_non_finite_objectives_rejected_when_strict(self):
        bad = _make_optimizer(
            objective_fn=lambda c: np.array([np.nan, 1.0]), strict=True
        )
        with pytest.raises(ValueError):
            bad.run()

    def test_non_finite_objectives_quarantined_by_default(self):
        # Every evaluation returns NaN: the search must still complete its
        # budget, with nothing in the archive and everything quarantined.
        bad = _make_optimizer(objective_fn=lambda c: np.array([np.nan, 1.0]))
        result = bad.run()
        assert len(result) == 0
        assert len(bad.quarantined) == 18
        assert len(bad.archive) == 0

    def test_to_dict_serialises_points(self):
        result = _make_optimizer(num_iterations=2).run()
        data = result.to_dict()
        assert data["num_objectives"] == 2
        assert len(data["points"]) == 8


class TestRandomSearch:
    def test_runs_requested_budget(self):
        result = RandomSearch(
            sample_fn=_sample,
            feature_fn=_features,
            objective_fn=_objectives,
            num_objectives=2,
            num_evaluations=15,
            seed=0,
        ).run()
        assert len(result) == 15
        assert all(p.phase == "random" for p in result.points)

    def test_front_is_non_dominated(self):
        result = RandomSearch(
            sample_fn=_sample,
            feature_fn=_features,
            objective_fn=_objectives,
            num_objectives=2,
            num_evaluations=30,
            seed=2,
        ).run()
        front = result.pareto_objectives()
        assert np.all(pareto_front_mask(front))

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomSearch(_sample, _features, _objectives, num_objectives=0)
        with pytest.raises(ValueError):
            RandomSearch(_sample, _features, _objectives, num_objectives=2, num_evaluations=0)
