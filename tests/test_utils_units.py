"""Tests for repro.utils.units."""

import pytest
from hypothesis import given, strategies as st

from repro.utils import units


def test_bytes_bits_round_trip():
    assert units.bytes_to_bits(10) == 80
    assert units.bits_to_bytes(80) == 10


def test_kilobyte_conversions():
    assert units.bytes_to_kilobytes(2048) == 2.0
    assert units.kilobytes_to_bytes(2.0) == 2048


def test_megabyte_conversions():
    assert units.bytes_to_megabytes(units.BYTES_PER_MB) == 1.0
    assert units.megabytes_to_bytes(1.0) == units.BYTES_PER_MB


def test_mbps_conversion_uses_decimal_megabits():
    # 8 Mbps == 1e6 bytes per second.
    assert units.mbps_to_bytes_per_second(8.0) == pytest.approx(1e6)


def test_alexnet_input_transfer_time_matches_hand_calculation():
    # 147 kB at 3 Mbps should take roughly 0.4 seconds.
    input_bytes = 224 * 224 * 3
    seconds = input_bytes / units.mbps_to_bytes_per_second(3.0)
    assert seconds == pytest.approx(0.4014, abs=1e-3)


def test_time_conversions():
    assert units.seconds_to_milliseconds(0.25) == 250
    assert units.milliseconds_to_seconds(250) == 0.25


def test_energy_conversions():
    assert units.joules_to_millijoules(0.207) == pytest.approx(207.0)
    assert units.millijoules_to_joules(207.0) == pytest.approx(0.207)


def test_power_conversions():
    assert units.watts_to_milliwatts(1.288) == pytest.approx(1288.0)
    assert units.milliwatts_to_watts(1288.04) == pytest.approx(1.28804)


@given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
def test_round_trips_are_identities(value):
    assert units.bits_to_bytes(units.bytes_to_bits(value)) == pytest.approx(value)
    assert units.millijoules_to_joules(units.joules_to_millijoules(value)) == pytest.approx(value)
    assert units.milliseconds_to_seconds(units.seconds_to_milliseconds(value)) == pytest.approx(value)
