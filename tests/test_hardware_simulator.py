"""Tests for the roofline layer-cost simulator."""

import numpy as np
import pytest

from repro.hardware.simulator import LayerCostSimulator
from repro.nn.alexnet import build_alexnet
from repro.nn.architecture import Architecture
from repro.nn.layers import Conv2D, Dense, Flatten


def summaries_by_name(architecture):
    return {s.name: s for s in architecture.summarize()}


class TestLatencyModel:
    def test_conv_layers_are_compute_bound_on_gpu(self, gpu_device, alexnet):
        sim = LayerCostSimulator(gpu_device)
        conv2 = summaries_by_name(alexnet)["conv2"]
        assert sim.compute_time(conv2) > sim.memory_time(conv2)
        assert sim.utilization(conv2) == pytest.approx(1.0)

    def test_large_fc_layers_are_memory_bound(self, gpu_device, alexnet):
        sim = LayerCostSimulator(gpu_device)
        fc6 = summaries_by_name(alexnet)["fc6"]
        assert sim.memory_time(fc6) > sim.compute_time(fc6)
        assert sim.utilization(fc6) < 0.2

    def test_latency_includes_overhead(self, gpu_device, alexnet):
        sim = LayerCostSimulator(gpu_device)
        pool1 = summaries_by_name(alexnet)["pool1"]
        assert sim.latency(pool1) >= gpu_device.layer_overhead_s

    def test_cpu_is_slower_than_gpu(self, gpu_device, cpu_device, alexnet):
        gpu_sim = LayerCostSimulator(gpu_device)
        cpu_sim = LayerCostSimulator(cpu_device)
        conv2 = summaries_by_name(alexnet)["conv2"]
        assert cpu_sim.latency(conv2) > gpu_sim.latency(conv2)

    def test_latency_monotone_in_layer_size(self, gpu_device):
        sim = LayerCostSimulator(gpu_device)
        small = Architecture("s", (3, 32, 32), [Conv2D(name="c", out_channels=16)])
        large = Architecture("l", (3, 32, 32), [Conv2D(name="c", out_channels=256)])
        assert sim.latency(large.summarize()[0]) > sim.latency(small.summarize()[0])


class TestPowerModel:
    def test_power_between_idle_and_peak(self, gpu_device, alexnet):
        sim = LayerCostSimulator(gpu_device)
        for summary in alexnet.summarize():
            power = sim.power(summary)
            assert gpu_device.idle_power_w <= power
            assert power <= gpu_device.idle_power_w + gpu_device.busy_power_w + 1e-9

    def test_compute_bound_layers_draw_more_power(self, gpu_device, alexnet):
        sim = LayerCostSimulator(gpu_device)
        by_name = summaries_by_name(alexnet)
        assert sim.power(by_name["conv2"]) > sim.power(by_name["fc6"])


class TestMeasurement:
    def test_noiseless_measurement_is_deterministic(self, gpu_device, alexnet):
        sim = LayerCostSimulator(gpu_device, noise_std=0.0)
        conv1 = alexnet.summarize()[0]
        first = sim.measure(conv1)
        second = sim.measure(conv1)
        assert first.latency_s == second.latency_s
        assert first.power_w == second.power_w
        assert first.energy_j == pytest.approx(first.latency_s * first.power_w)

    def test_noise_perturbs_measurements(self, gpu_device, alexnet):
        sim = LayerCostSimulator(gpu_device, noise_std=0.1, rng=0)
        conv1 = alexnet.summarize()[0]
        values = {sim.measure(conv1).latency_s for _ in range(5)}
        assert len(values) > 1

    def test_noise_is_seed_reproducible(self, gpu_device, alexnet):
        conv1 = alexnet.summarize()[0]
        a = LayerCostSimulator(gpu_device, noise_std=0.1, rng=3).measure(conv1)
        b = LayerCostSimulator(gpu_device, noise_std=0.1, rng=3).measure(conv1)
        assert a.latency_s == b.latency_s

    def test_measure_architecture_totals(self, gpu_device, alexnet):
        sim = LayerCostSimulator(gpu_device)
        measurements, total_latency, total_energy = sim.measure_architecture(alexnet)
        assert len(measurements) == len(alexnet)
        assert total_latency == pytest.approx(sum(m.latency_s for m in measurements))
        assert total_energy == pytest.approx(sum(m.energy_j for m in measurements))

    def test_negative_noise_rejected(self, gpu_device):
        with pytest.raises(ValueError):
            LayerCostSimulator(gpu_device, noise_std=-0.1)


class TestPaperCalibration:
    """The simulator must reproduce the motivational-example structure (Fig. 1)."""

    def test_alexnet_gpu_latency_in_tens_of_milliseconds(self, gpu_device, alexnet):
        sim = LayerCostSimulator(gpu_device)
        _, total_latency, _ = sim.measure_architecture(alexnet)
        assert 0.01 < total_latency < 0.2

    def test_fc_layers_take_roughly_half_the_latency(self, gpu_device, alexnet):
        sim = LayerCostSimulator(gpu_device)
        measurements, total_latency, _ = sim.measure_architecture(alexnet)
        fc_latency = sum(
            m.latency_s
            for m, s in zip(measurements, alexnet.summarize())
            if s.layer_type == "fc"
        )
        assert 0.35 < fc_latency / total_latency < 0.75

    def test_alexnet_gpu_energy_in_hundreds_of_millijoules(self, gpu_device, alexnet):
        sim = LayerCostSimulator(gpu_device)
        _, _, total_energy = sim.measure_architecture(alexnet)
        assert 0.05 < total_energy < 1.0
