"""Tests for the regional catalogue, throughput traces and the online tracker."""

import numpy as np
import pytest

from repro.wireless.regions import (
    ALL_REGIONS,
    PAPER_REGIONS,
    Region,
    all_regions,
    paper_regions,
    region_by_name,
)
from repro.wireless.tracker import ThroughputTracker
from repro.wireless.traces import (
    ThroughputSample,
    ThroughputTrace,
    generate_lte_trace,
    paper_like_traces,
)


class TestRegions:
    def test_paper_regions_match_table_1(self):
        by_name = {r.name: r.avg_uplink_mbps for r in PAPER_REGIONS}
        assert by_name == {"South Korea": 16.1, "USA": 7.5, "Afghanistan": 0.7}

    def test_lookup_is_case_insensitive(self):
        assert region_by_name("usa").avg_uplink_mbps == 7.5
        with pytest.raises(KeyError):
            region_by_name("atlantis")

    def test_catalogue_is_sorted_by_throughput(self):
        speeds = [r.avg_uplink_mbps for r in all_regions()]
        assert speeds == sorted(speeds, reverse=True)
        assert len(all_regions()) == len(ALL_REGIONS)

    def test_paper_regions_accessor_preserves_order(self):
        assert [r.name for r in paper_regions()] == ["South Korea", "USA", "Afghanistan"]

    def test_region_requires_positive_throughput(self):
        with pytest.raises(ValueError):
            Region("nowhere", 0.0)


class TestTraces:
    def test_default_trace_matches_collection_protocol(self):
        trace = generate_lte_trace(seed=0)
        assert len(trace) == 40
        assert trace.times_s[1] - trace.times_s[0] == pytest.approx(300.0)

    def test_trace_values_positive_and_reproducible(self):
        a = generate_lte_trace(seed=5)
        b = generate_lte_trace(seed=5)
        assert np.array_equal(a.uplinks_mbps, b.uplinks_mbps)
        assert np.all(a.uplinks_mbps > 0)

    def test_mean_throughput_tracks_requested_mean(self):
        trace = generate_lte_trace(num_samples=500, mean_mbps=8.0, seed=1)
        assert 4.0 < trace.mean_mbps < 14.0

    def test_statistics_accessors(self):
        trace = ThroughputTrace.from_values([1.0, 5.0, 3.0])
        assert trace.min_mbps == 1.0
        assert trace.max_mbps == 5.0
        assert trace.mean_mbps == pytest.approx(3.0)
        assert trace[1].uplink_mbps == 5.0

    def test_requires_ordered_samples(self):
        with pytest.raises(ValueError):
            ThroughputTrace(
                [ThroughputSample(10.0, 1.0), ThroughputSample(5.0, 2.0)]
            )
        with pytest.raises(ValueError):
            ThroughputTrace([])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_lte_trace(num_samples=0)
        with pytest.raises(ValueError):
            generate_lte_trace(correlation=1.5)
        with pytest.raises(ValueError):
            generate_lte_trace(mean_mbps=-1.0)

    def test_paper_like_traces_cover_both_models(self):
        traces = paper_like_traces(seed=7)
        assert set(traces) == {"model_a", "model_b"}
        assert traces["model_b"].mean_mbps > traces["model_a"].mean_mbps

    def test_to_dict(self):
        data = generate_lte_trace(num_samples=3, seed=0).to_dict()
        assert len(data["samples"]) == 3


class TestTracker:
    def test_memoryless_tracker_returns_latest(self):
        tracker = ThroughputTracker(smoothing=1.0)
        assert tracker.estimate_mbps is None
        tracker.observe(5.0)
        tracker.observe(9.0)
        assert tracker.estimate_mbps == 9.0
        assert tracker.num_observations == 2

    def test_smoothing_averages_observations(self):
        tracker = ThroughputTracker(smoothing=0.5)
        tracker.observe(4.0)
        tracker.observe(8.0)
        assert tracker.estimate_mbps == pytest.approx(6.0)

    def test_initial_estimate(self):
        tracker = ThroughputTracker(smoothing=0.5, initial_mbps=10.0)
        assert tracker.estimate_mbps == 10.0
        tracker.observe(20.0)
        assert tracker.estimate_mbps == pytest.approx(15.0)

    def test_reset_clears_state(self):
        tracker = ThroughputTracker()
        tracker.observe(3.0)
        tracker.reset()
        assert tracker.estimate_mbps is None
        assert tracker.history == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            ThroughputTracker(smoothing=0.0)
        with pytest.raises(ValueError):
            ThroughputTracker(initial_mbps=-1.0)
        with pytest.raises(ValueError):
            ThroughputTracker().observe(0.0)


class TestTrackerHistoryLimit:
    """Regression: unbounded ``_history`` growth on long-running trackers."""

    def test_default_keeps_full_history(self):
        tracker = ThroughputTracker()
        for value in range(1, 51):
            tracker.observe(float(value))
        assert len(tracker.history) == 50  # default behaviour unchanged

    def test_history_limit_bounds_memory_not_estimates(self):
        bounded = ThroughputTracker(smoothing=0.5, history_limit=4)
        unbounded = ThroughputTracker(smoothing=0.5)
        for value in (3.0, 7.0, 2.0, 9.0, 4.0, 6.0, 8.0):
            bounded.observe(value)
            unbounded.observe(value)
        # The estimate and observation count are unaffected by eviction...
        assert bounded.estimate_mbps == unbounded.estimate_mbps
        assert bounded.num_observations == unbounded.num_observations == 7
        # ...but only the most recent samples are retained.
        assert bounded.history == unbounded.history[-4:]
        assert len(bounded.history) == 4

    def test_zero_limit_keeps_no_history(self):
        tracker = ThroughputTracker(history_limit=0)
        for _ in range(10):
            tracker.observe(5.0)
        assert tracker.history == []
        assert tracker.num_observations == 10
        assert tracker.estimate_mbps == 5.0

    def test_reset_respects_limit(self):
        tracker = ThroughputTracker(history_limit=2)
        for value in (1.0, 2.0, 3.0):
            tracker.observe(value)
        tracker.reset()
        assert tracker.history == []
        assert tracker.num_observations == 0
        for value in (4.0, 5.0, 6.0):
            tracker.observe(value)
        assert tracker.history == [5.0, 6.0]

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            ThroughputTracker(history_limit=-1)
