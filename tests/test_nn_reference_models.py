"""Tests for the AlexNet and VGG reference architectures."""

import pytest

from repro.nn.alexnet import build_alexnet
from repro.nn.vgg import build_vgg16, build_vgg_like


class TestAlexNet:
    def test_layer_sequence_matches_paper_figure(self):
        alex = build_alexnet()
        names = [layer.name for layer in alex.layers]
        assert names == [
            "conv1", "pool1", "conv2", "pool2", "conv3", "conv4",
            "conv5", "pool5", "flatten", "fc6", "fc7", "fc8",
        ]

    def test_canonical_feature_map_sizes(self):
        alex = build_alexnet()
        shapes = {s.name: s.output_shape for s in alex.summarize()}
        assert shapes["conv1"] == (96, 55, 55)
        assert shapes["pool1"] == (96, 27, 27)
        assert shapes["pool2"] == (256, 13, 13)
        assert shapes["pool5"] == (256, 6, 6)
        assert shapes["fc6"] == (4096,)

    def test_parameter_count_matches_published_value(self):
        # AlexNet has roughly 61 million parameters.
        alex = build_alexnet()
        assert alex.total_params == pytest.approx(61e6, rel=0.05)

    def test_input_is_147_kilobytes(self):
        alex = build_alexnet()
        assert alex.input_bytes == 224 * 224 * 3
        assert alex.input_bytes / 1024 == pytest.approx(147.0, abs=0.1)

    def test_fc_layers_hold_most_parameters(self):
        alex = build_alexnet()
        fc_params = sum(s.params for s in alex.summarize() if s.layer_type == "fc")
        assert fc_params / alex.total_params > 0.9

    def test_custom_class_count(self):
        alex = build_alexnet(num_classes=10)
        assert alex.output_shape == (10,)


class TestVGG:
    def test_vgg16_has_sixteen_weight_layers(self):
        vgg = build_vgg16()
        assert vgg.depth == 16

    def test_vgg16_parameter_count_matches_published_value(self):
        # VGG-16 has roughly 138 million parameters.
        vgg = build_vgg16()
        assert vgg.total_params == pytest.approx(138e6, rel=0.05)

    def test_vgg16_final_feature_map(self):
        vgg = build_vgg16()
        shapes = {s.name: s.output_shape for s in vgg.summarize()}
        assert shapes["pool5"] == (512, 7, 7)

    def test_vgg_like_block_structure(self):
        arch = build_vgg_like(
            name="custom",
            block_filters=(16, 32),
            block_depths=(1, 2),
            fc_units=(64,),
            num_classes=5,
            input_shape=(3, 32, 32),
        )
        assert arch.count_layers("conv") == 3
        assert arch.count_layers("pool") == 2
        assert arch.output_shape == (5,)

    def test_vgg_like_rejects_mismatched_blocks(self):
        with pytest.raises(ValueError):
            build_vgg_like(
                name="bad", block_filters=(16, 32), block_depths=(1,), fc_units=()
            )
