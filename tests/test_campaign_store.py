"""Run-store persistence: fingerprints, round-trips, torn-tail repair."""

from __future__ import annotations

import json

import pytest

from repro.api.envelopes import SearchRequest, request_fingerprint
from repro.api.session import run_search
from repro.campaign.store import INDEX_FILENAME, RUNS_FILENAME, RunStore, StoreError

#: Budgets small enough that one run is milliseconds.
FAST = dict(
    num_initial=4,
    num_iterations=2,
    candidate_pool_size=16,
    predictor_samples_per_type=40,
)


def _request(**overrides) -> SearchRequest:
    fields = dict(FAST, scenario="wifi-3mbps/jetson-tx2-gpu", strategy="random", seed=0)
    fields.update(overrides)
    return SearchRequest(**fields)


class TestRequestFingerprint:
    def test_deterministic_and_tag_independent(self):
        base = _request()
        assert base.fingerprint() == _request().fingerprint()
        tagged = _request(tags={"note": "metadata must not change the key"})
        assert tagged.fingerprint() == base.fingerprint()

    def test_sensitive_to_computational_fields(self):
        base = _request()
        for changed in (
            _request(seed=1),
            _request(strategy="lens"),
            _request(scenario="lte-3mbps/jetson-tx2-gpu"),
            _request(num_iterations=3),
            _request(acquisition="ucb"),
        ):
            assert changed.fingerprint() != base.fingerprint()

    def test_survives_serialization_round_trip(self):
        base = _request(tags={"run": "a"})
        restored = SearchRequest.from_dict(json.loads(json.dumps(base.to_dict())))
        assert request_fingerprint(restored) == base.fingerprint()


class TestRunStore:
    def test_append_get_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "store")
        outcome = run_search(_request())
        fingerprint = store.append(outcome)
        assert fingerprint == outcome.request.fingerprint()
        assert fingerprint in store
        assert len(store) == 1
        restored = store.get(fingerprint)
        assert restored.to_dict() == outcome.to_dict()

    def test_reopen_recovers_index(self, tmp_path):
        directory = tmp_path / "store"
        store = RunStore(directory)
        fingerprints = [
            store.append(run_search(_request(seed=seed))) for seed in (0, 1, 2)
        ]
        (directory / INDEX_FILENAME).unlink()  # the JSONL is the source of truth

        reopened = RunStore(directory)
        assert reopened.fingerprints() == fingerprints
        # opening for reading never writes; the next append refreshes the index
        assert not (directory / INDEX_FILENAME).exists()
        for fingerprint in fingerprints:
            assert reopened.get(fingerprint).request.fingerprint() == fingerprint
        reopened.append(run_search(_request(seed=3)))
        assert (directory / INDEX_FILENAME).exists()

    def test_open_for_reading_creates_nothing(self, tmp_path):
        directory = tmp_path / "absent"
        store = RunStore(directory)
        assert len(store) == 0
        assert list(store.outcomes()) == []
        assert not directory.exists()  # only the first append creates it

    def test_duplicate_append_raises(self, tmp_path):
        store = RunStore(tmp_path / "store")
        outcome = run_search(_request())
        store.append(outcome)
        with pytest.raises(StoreError, match="already stored"):
            store.append(outcome)

    def test_torn_tail_is_ignored_on_open_and_truncated_by_append(self, tmp_path):
        directory = tmp_path / "store"
        store = RunStore(directory)
        store.append(run_search(_request(seed=0)))
        kept = store.append(run_search(_request(seed=1)))
        runs_path = directory / RUNS_FILENAME
        intact = runs_path.read_bytes()
        # simulate a process killed mid-append: half a record, no newline
        runs_path.write_bytes(intact + b'{"fingerprint": "dead", "outco')

        reopened = RunStore(directory)
        assert len(reopened) == 2
        assert list(o.request.seed for o in reopened.outcomes()) == [0, 1]
        # opening read-only leaves the file alone (a concurrent writer may
        # still be flushing that tail); the next append repairs it
        assert runs_path.read_bytes() != intact
        appended = reopened.append(run_search(_request(seed=2)))
        assert reopened.fingerprints() == [*RunStore(directory).fingerprints()]
        assert reopened.fingerprints()[-1] == appended
        assert kept in reopened
        assert b"dead" not in runs_path.read_bytes()
        assert runs_path.read_bytes().startswith(intact)

    def test_parseable_tail_without_newline_is_still_torn(self, tmp_path):
        """Durability requires the newline: a flushed prefix that happens to
        parse as complete JSON must not be indexed, or the next append would
        concatenate onto the same line and corrupt the store."""
        directory = tmp_path / "store"
        store = RunStore(directory)
        store.append(run_search(_request(seed=0)))
        last = store.append(run_search(_request(seed=1)))
        runs_path = directory / RUNS_FILENAME
        runs_path.write_bytes(runs_path.read_bytes().rstrip(b"\n"))  # kill ate \n

        reopened = RunStore(directory)
        assert len(reopened) == 1  # the newline-less record is torn, not stored
        assert last not in reopened
        readded = reopened.append(run_search(_request(seed=1)))
        assert readded == last
        assert RunStore(directory).fingerprints() == reopened.fingerprints()

    def test_corrupt_middle_record_raises(self, tmp_path):
        directory = tmp_path / "store"
        store = RunStore(directory)
        store.append(run_search(_request(seed=0)))
        store.append(run_search(_request(seed=1)))
        runs_path = directory / RUNS_FILENAME
        lines = runs_path.read_bytes().splitlines(keepends=True)
        runs_path.write_bytes(b"not json\n" + lines[1])
        with pytest.raises(StoreError, match="corrupt record"):
            RunStore(directory)

    def test_outcomes_stream_in_append_order(self, tmp_path):
        store = RunStore(tmp_path / "store")
        expected = []
        for seed in (3, 1, 2):
            outcome = run_search(_request(seed=seed))
            store.append(outcome)
            expected.append(outcome.request.seed)
        assert [o.request.seed for o in store.outcomes()] == expected

    def test_summary_aggregates_records(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.append(run_search(_request(seed=0)))
        store.append(run_search(_request(seed=0, strategy="lens")))
        summary = store.summary()
        assert summary["num_runs"] == 2
        assert summary["scenarios"] == ["wifi-3mbps/jetson-tx2-gpu"]
        assert summary["strategies"] == ["lens", "random"]

    def test_outcomes_paginate_with_offset_and_limit(self, tmp_path):
        store = RunStore(tmp_path / "store")
        expected = []
        for seed in (0, 1, 2, 3):
            store.append(run_search(_request(seed=seed)))
            expected.append(seed)
        assert [o.request.seed for o in store.outcomes(offset=1, limit=2)] == [1, 2]
        assert [o.request.seed for o in store.outcomes(offset=3)] == [3]
        assert [o.request.seed for o in store.outcomes(offset=9)] == []
        with pytest.raises(ValueError, match="non-negative"):
            list(store.outcomes(offset=-1))
        with pytest.raises(ValueError, match="non-negative"):
            list(store.outcomes(limit=-1))

    def test_index_write_is_atomic(self, tmp_path):
        """No temp droppings, and never a torn index file on disk."""
        directory = tmp_path / "store"
        store = RunStore(directory)
        store.append(run_search(_request(seed=0)))
        leftovers = [
            p.name for p in directory.iterdir()
            if ".tmp." in p.name
        ]
        assert leftovers == []
        json.loads((directory / INDEX_FILENAME).read_text(encoding="utf-8"))

    def test_index_flush_is_deferred_past_small_threshold(self, tmp_path):
        """Large stores write O(n) index bytes, not O(n^2): flushes happen
        at geometric sizes, with flush()/close() persisting the rest."""
        from repro.campaign.store import INDEX_FLUSH_SMALL

        directory = tmp_path / "store"
        directory.mkdir(parents=True)
        outcome = run_search(_request(seed=0))
        record = json.dumps(
            {"fingerprint": "f", "outcome": outcome.to_dict()}
        )
        # simulate a long campaign cheaply: append raw records, then reopen
        with (directory / RUNS_FILENAME).open("a", encoding="utf-8") as handle:
            for i in range(INDEX_FLUSH_SMALL + 100):
                handle.write(record.replace('"f"', f'"f{i:08d}"', 1) + "\n")
        big = RunStore(directory)
        assert len(big) == INDEX_FLUSH_SMALL + 100
        writes_before = big.index_writes
        for i in range(40):
            big.append(run_search(_request(seed=100 + i)))
        # 40 appends past the threshold trigger at most a couple of flushes
        assert big.index_writes - writes_before <= 2
        big.flush()
        reopened = RunStore(directory)
        assert len(reopened) == len(big)
        # the persisted index is current after flush()
        index = json.loads((directory / INDEX_FILENAME).read_text("utf-8"))
        assert len(index["records"]) == len(big)

    def test_context_manager_flushes_on_close(self, tmp_path):
        directory = tmp_path / "store"
        with RunStore(directory) as store:
            store.append(run_search(_request(seed=0)))
        json.loads((directory / INDEX_FILENAME).read_text(encoding="utf-8"))
