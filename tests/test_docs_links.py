"""The documentation set must not contain broken intra-repo links.

Runs the same checker the CI docs job uses (``tools/check_docs_links.py``),
so a dangling ``docs/*.md`` or ``README.md`` link fails the tier-1 suite
locally before it fails the workflow.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
CHECKER_PATH = REPO_ROOT / "tools" / "check_docs_links.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_docs_links", CHECKER_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_docs_links", module)
    spec.loader.exec_module(module)
    return module


def test_documentation_set_exists():
    checker = _load_checker()
    files = {p.name for p in checker.documentation_files(REPO_ROOT)}
    assert {"README.md", "index.md", "architecture.md", "scenarios.md",
            "cli.md", "api.md"} <= files


def test_no_broken_intra_repo_links():
    checker = _load_checker()
    assert checker.broken_links(REPO_ROOT) == []


def test_checker_flags_a_dangling_link(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "page.md").write_text(
        "ok [real](../README.md), bad [gone](missing.md), "
        "skip [ext](https://example.com) and [anchor](#here)\n"
        "```\n[not a link in code](also-missing.md)\n```\n",
        encoding="utf-8",
    )
    (tmp_path / "README.md").write_text("root\n", encoding="utf-8")
    checker = _load_checker()
    problems = checker.broken_links(tmp_path)
    assert len(problems) == 1
    assert "missing.md" in problems[0]
