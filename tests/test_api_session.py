"""Tests for repro.api.session: strategies, run_search, legacy equivalence."""

import numpy as np
import pytest

from repro.api.engine import EvaluationEngine
from repro.api.envelopes import SearchOutcome, SearchRequest
from repro.api.session import STRATEGIES, build_context, execute_strategy, run_search
from repro.core.lens import LensConfig, LensSearch
from repro.core.traditional import TraditionalSearch

FAST = dict(
    num_initial=5,
    num_iterations=8,
    candidate_pool_size=32,
    predictor_samples_per_type=60,
    seed=0,
)


@pytest.fixture(scope="module")
def engine():
    return EvaluationEngine()


def test_strategy_registry_builtins():
    assert set(STRATEGIES.names()) == {"lens", "traditional", "random"}


def test_unknown_strategy_fails_with_listing(small_search_space, engine):
    request = SearchRequest(strategy="lense", **FAST)
    context = build_context(request, search_space=small_search_space, engine=engine)
    with pytest.raises(KeyError, match="Did you mean 'lens'"):
        execute_strategy(context)


def test_unknown_scenario_fails_with_listing(engine):
    with pytest.raises(KeyError, match="wifi-3mbps/jetson-tx2-gpu"):
        run_search(scenario="wifi-3mbps/jetson-tx2-gp", engine=engine, **FAST)


class TestRunSearch:
    @pytest.fixture(scope="class")
    def outcome(self, small_search_space, engine):
        return run_search(
            strategy="lens",
            scenario="wifi-3mbps/jetson-tx2-gpu",
            search_space=small_search_space,
            engine=engine,
            **FAST,
        )

    def test_budget_and_label(self, outcome):
        assert len(outcome) == FAST["num_initial"] + FAST["num_iterations"]
        assert outcome.label == "lens"
        assert outcome.wall_time_s > 0.0

    def test_outcome_embeds_request_and_scenario(self, outcome):
        assert outcome.request.strategy == "lens"
        assert outcome.scenario.name == "wifi-3mbps/jetson-tx2-gpu"
        assert outcome.engine_stats["partition_misses"] > 0

    def test_outcome_round_trips(self, outcome):
        restored = SearchOutcome.from_dict(outcome.to_dict())
        assert len(restored) == len(outcome)
        assert restored.label == outcome.label
        assert restored.scenario == outcome.scenario
        assert restored.request == outcome.request
        a = outcome.result.objective_matrix(("error_percent", "energy_j"))
        b = restored.result.objective_matrix(("error_percent", "energy_j"))
        assert np.allclose(a, b)

    def test_front_history_tracks_every_evaluation(self, outcome):
        history = outcome.front_history
        assert history is not None
        assert len(history) == len(outcome)
        assert history.metrics == ("error_percent", "latency_s", "energy_j")
        volumes = history.hypervolumes()
        assert np.all(np.diff(volumes) >= -1e-12)  # prefixes only grow the front
        assert history.final_hypervolume > 0.0
        assert 1 <= history.final_front_size <= len(outcome)
        # entries carry the candidates' names and iteration numbers
        assert [e.candidate for e in history.entries] == [
            c.architecture_name for c in outcome.candidates
        ]
        assert [e.iteration for e in history.entries] == [
            c.iteration for c in outcome.candidates
        ]

    def test_front_history_round_trips_through_outcome(self, outcome):
        restored = SearchOutcome.from_dict(outcome.to_dict())
        assert restored.front_history == outcome.front_history

    def test_health_counters_round_trip_and_upgrade(self, outcome):
        # a healthy run carries empty counters (schema v4)
        assert outcome.health == {}
        data = outcome.to_dict()
        assert data["health"] == {}
        # pre-v4 payloads (no health key) upgrade to empty counters
        legacy = dict(data)
        legacy.pop("health")
        assert SearchOutcome.from_dict(legacy).health == {}
        # non-empty counters survive the round trip
        data["health"] = {"H_RESUMED": 1, "H_JITTER_ESCALATED": 3}
        restored = SearchOutcome.from_dict(data)
        assert restored.health == {"H_RESUMED": 1, "H_JITTER_ESCALATED": 3}

    def test_batched_epdc_search_keeps_the_budget(self, small_search_space, engine):
        batched = run_search(
            strategy="lens",
            search_space=small_search_space,
            engine=engine,
            acquisition="epdc",
            batch_size=4,
            **FAST,
        )
        assert len(batched) == FAST["num_initial"] + FAST["num_iterations"]
        assert batched.request.batch_size == 4
        assert batched.front_history is not None

    def test_accepts_request_objects_and_dicts(self, small_search_space, engine, outcome):
        request = SearchRequest(
            strategy="lens", scenario="wifi-3mbps/jetson-tx2-gpu", **FAST
        )
        for form in (request, request.to_dict()):
            other = run_search(
                form, search_space=small_search_space, engine=engine
            )
            assert np.allclose(
                other.result.objective_matrix(("error_percent", "energy_j")),
                outcome.result.objective_matrix(("error_percent", "energy_j")),
            )

    def test_by_name_run_reproduces_legacy_lens_search(
        self, small_search_space, engine, outcome
    ):
        config = LensConfig(
            wireless_technology="wifi",
            expected_uplink_mbps=3.0,
            device="jetson-tx2-gpu",
            **FAST,
        )
        legacy = LensSearch(
            search_space=small_search_space, config=config, engine=EvaluationEngine()
        ).run()
        legacy_front = {
            (c.architecture_name, round(c.error_percent, 9), round(c.energy_j, 12))
            for c in legacy.pareto_candidates(("error_percent", "energy_j"))
        }
        api_front = {
            (c.architecture_name, round(c.error_percent, 9), round(c.energy_j, 12))
            for c in outcome.pareto_candidates(("error_percent", "energy_j"))
        }
        assert legacy_front == api_front


class TestOtherStrategies:
    def test_traditional_uses_all_edge_objectives(self, small_search_space, engine):
        outcome = run_search(
            strategy="traditional",
            search_space=small_search_space,
            engine=engine,
            **FAST,
        )
        assert outcome.label == "traditional"
        for candidate in outcome.candidates:
            assert candidate.latency_s == pytest.approx(candidate.all_edge_latency_s)
            assert candidate.energy_j == pytest.approx(candidate.all_edge_energy_j)

    def test_random_strategy_respects_budget_and_is_reproducible(
        self, small_search_space, engine
    ):
        first = run_search(
            strategy="random", search_space=small_search_space, engine=engine, **FAST
        )
        second = run_search(
            strategy="random", search_space=small_search_space, engine=engine, **FAST
        )
        assert first.label == "random"
        assert len(first) == FAST["num_initial"] + FAST["num_iterations"]
        assert all(c.phase == "random" for c in first.candidates)
        assert [c.genotype for c in first.candidates] == [
            c.genotype for c in second.candidates
        ]


class TestLegacyWrappers:
    def test_lens_search_exposes_components(self, small_search_space):
        config = LensConfig(**FAST)
        search = LensSearch(
            search_space=small_search_space, config=config, engine=EvaluationEngine()
        )
        assert search.device.name == "jetson-tx2-gpu"
        assert search.channel.technology == "wifi"
        assert search.evaluator.partition_within is True
        assert search.search_space is small_search_space
        assert search.engine is search.context.engine

    def test_traditional_search_still_forces_partition_off(self, small_search_space):
        search = TraditionalSearch(
            search_space=small_search_space,
            config=LensConfig(**FAST),
            engine=EvaluationEngine(),
        )
        assert search.config.partition_within is False
        assert search.evaluator.partition_within is False

    def test_config_to_request_round_trips_strategy(self):
        assert LensConfig(partition_within=True).to_request().strategy == "lens"
        assert (
            LensConfig(partition_within=False).to_request().strategy == "traditional"
        )
        scenario = LensConfig(expected_uplink_mbps=7.5).to_scenario()
        assert scenario.uplink_mbps == 7.5
        assert scenario.name == "wifi-7.5mbps/jetson-tx2-gpu"
