"""Tests for the Table II feature-comparison data."""

import pytest

from repro.core.related_work import (
    FEATURES,
    RELATED_WORKS,
    RelatedWork,
    feature_matrix,
    feature_matrix_headers,
)


def work(name):
    return next(w for w in RELATED_WORKS if w.name == name)


def test_all_four_systems_present_in_paper_order():
    assert [w.name for w in RELATED_WORKS] == ["LENS", "NS", "SIEVE", "RNN"]


def test_feature_list_matches_table_2():
    assert len(FEATURES) == 8
    assert "NAS support" in FEATURES
    assert "E-C Layer-Partitioning" in FEATURES


def test_lens_is_the_only_nas_and_wireless_aware_system():
    for feature in ("NAS support", "Wireless expectancy at Design Time"):
        supporters = [w.name for w in RELATED_WORKS if w.supports(feature)]
        assert supporters == ["LENS"]


def test_every_system_supports_runtime_optimization():
    assert all(w.supports("Runtime Optimization") for w in RELATED_WORKS)


def test_neurosurgeon_supports_partitioning_but_not_design_automation():
    ns = work("NS")
    assert ns.supports("E-C Layer-Partitioning")
    assert not ns.supports("Design Automation")


def test_sieve_supports_compression_and_hardware_optimization():
    sieve = work("SIEVE")
    assert sieve.supports("Compression")
    assert sieve.supports("Hardware Optimization")
    assert not sieve.supports("E-C Layer-Partitioning")


def test_lens_does_not_claim_compression_or_hardware_optimization():
    lens = work("LENS")
    assert not lens.supports("Compression")
    assert not lens.supports("Hardware Optimization")


def test_unknown_feature_rejected():
    with pytest.raises(ValueError):
        work("LENS").supports("Quantization")


def test_matrix_layout_matches_headers():
    headers = feature_matrix_headers()
    matrix = feature_matrix()
    assert headers == ["Supported Features", "LENS", "NS", "SIEVE", "RNN"]
    assert len(matrix) == len(FEATURES)
    assert all(len(row) == len(headers) for row in matrix)
    lens_marks = [row[1] for row in matrix]
    assert lens_marks.count("yes") == 6


def test_to_dict():
    data = work("LENS").to_dict()
    assert data["name"] == "LENS"
    assert "NAS support" in data["supported"]
