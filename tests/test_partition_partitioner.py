"""Tests for the Algorithm 1 partitioning engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.predictors import OracleLayerPredictor
from repro.hardware.device import cloud_server
from repro.nn.search_space import LensSearchSpace
from repro.partition.deployment import DeploymentOption
from repro.partition.partitioner import PartitionAnalyzer, identify_partition_points
from repro.wireless.channel import WirelessChannel


class TestPartitionPoints:
    def test_alexnet_viable_points_match_paper(self, alexnet):
        """The paper: Pool5 (and the FC layers) are the viable partition points."""
        indices = identify_partition_points(alexnet.summarize(), alexnet.input_bytes)
        names = [alexnet.layers[i].name for i in indices]
        assert names == ["pool5", "fc6", "fc7"]

    def test_without_shrinkage_requirement_all_activation_layers_qualify(self, alexnet):
        indices = identify_partition_points(
            alexnet.summarize(), alexnet.input_bytes, require_shrinkage=False
        )
        # Every layer except flatten (structural) and the final classifier.
        assert len(indices) == len(alexnet) - 2

    def test_final_layer_never_a_split_point(self, alexnet):
        indices = identify_partition_points(
            alexnet.summarize(), alexnet.input_bytes, require_shrinkage=False
        )
        assert (len(alexnet) - 1) not in indices


class TestPartitionAnalyzer:
    def test_option_inventory(self, gpu_wifi_analyzer, alexnet):
        evaluation = gpu_wifi_analyzer.evaluate(alexnet)
        labels = [m.option.label for m in evaluation.options]
        assert labels[0] == "All-Cloud"
        assert labels[1] == "All-Edge"
        assert "Split@pool5" in labels
        assert len(evaluation.split_options) == 3

    def test_all_edge_costs_equal_layer_sums(self, gpu_wifi_analyzer, gpu_oracle, alexnet):
        evaluation = gpu_wifi_analyzer.evaluate(alexnet)
        assert evaluation.all_edge.latency_s == pytest.approx(
            gpu_oracle.total_latency(alexnet)
        )
        assert evaluation.all_edge.energy_j == pytest.approx(
            gpu_oracle.total_energy(alexnet)
        )
        assert evaluation.all_edge.comm_latency_s == 0.0
        assert evaluation.all_edge.transferred_bytes == 0.0

    def test_all_cloud_costs_are_pure_communication(
        self, gpu_wifi_analyzer, wifi_channel, alexnet
    ):
        evaluation = gpu_wifi_analyzer.evaluate(alexnet)
        all_cloud = evaluation.all_cloud
        assert all_cloud.edge_latency_s == 0.0
        assert all_cloud.transferred_bytes == alexnet.input_bytes
        assert all_cloud.latency_s == pytest.approx(
            wifi_channel.communication_latency_s(alexnet.input_bytes)
        )
        assert all_cloud.energy_j == pytest.approx(
            wifi_channel.communication_energy_j(alexnet.input_bytes)
        )

    def test_split_cost_is_prefix_plus_communication(
        self, gpu_wifi_analyzer, wifi_channel, alexnet
    ):
        evaluation = gpu_wifi_analyzer.evaluate(alexnet)
        pool5_index = alexnet.layer_index("pool5")
        split = evaluation.metrics_for(DeploymentOption.split_after(pool5_index, "pool5"))
        prefix_latency = sum(evaluation.layer_latencies_s[: pool5_index + 1])
        prefix_energy = sum(evaluation.layer_energies_j[: pool5_index + 1])
        transfer_bytes = alexnet.summarize()[pool5_index].output_bytes
        assert split.edge_latency_s == pytest.approx(prefix_latency)
        assert split.latency_s == pytest.approx(
            prefix_latency + wifi_channel.communication_latency_s(transfer_bytes)
        )
        assert split.energy_j == pytest.approx(
            prefix_energy + wifi_channel.communication_energy_j(transfer_bytes)
        )

    def test_best_options_minimise_their_metric(self, gpu_wifi_analyzer, alexnet):
        evaluation = gpu_wifi_analyzer.evaluate(alexnet)
        latencies = [m.latency_s for m in evaluation.options]
        energies = [m.energy_j for m in evaluation.options]
        assert evaluation.best_latency.latency_s == pytest.approx(min(latencies))
        assert evaluation.best_energy.energy_j == pytest.approx(min(energies))
        assert evaluation.best_for("latency") == evaluation.best_latency
        with pytest.raises(ValueError):
            evaluation.best_for("throughput")

    def test_precomputed_predictions_are_honoured(self, gpu_oracle, wifi_channel, alexnet):
        analyzer = PartitionAnalyzer(gpu_oracle, wifi_channel)
        predictions = gpu_oracle.predict_architecture(alexnet)
        evaluation = analyzer.evaluate(alexnet, predictions=predictions)
        assert evaluation.all_edge.latency_s == pytest.approx(
            sum(p.latency_s for p in predictions)
        )
        with pytest.raises(ValueError):
            analyzer.evaluate(alexnet, predictions=predictions[:-1])

    def test_cloud_compute_can_be_included(self, gpu_oracle, wifi_channel, alexnet):
        cloud_predictor = OracleLayerPredictor(cloud_server())
        with_cloud = PartitionAnalyzer(
            gpu_oracle, wifi_channel, cloud_predictor=cloud_predictor
        ).evaluate(alexnet)
        without_cloud = PartitionAnalyzer(gpu_oracle, wifi_channel).evaluate(alexnet)
        assert with_cloud.all_cloud.latency_s > without_cloud.all_cloud.latency_s
        # Energy charged to the edge is unchanged.
        assert with_cloud.all_cloud.energy_j == pytest.approx(
            without_cloud.all_cloud.energy_j
        )

    def test_with_channel_rebinds_wireless_conditions(self, gpu_oracle, wifi_channel, alexnet):
        analyzer = PartitionAnalyzer(gpu_oracle, wifi_channel)
        faster = analyzer.with_channel(wifi_channel.with_uplink(30.0))
        slow_eval = analyzer.evaluate(alexnet)
        fast_eval = faster.evaluate(alexnet)
        assert fast_eval.all_cloud.latency_s < slow_eval.all_cloud.latency_s

    def test_metrics_for_unknown_option_raises(self, gpu_wifi_analyzer, alexnet):
        evaluation = gpu_wifi_analyzer.evaluate(alexnet)
        with pytest.raises(KeyError):
            evaluation.metrics_for(DeploymentOption.split_after(0, "conv1"))

    def test_to_dict_summarises_evaluation(self, gpu_wifi_analyzer, alexnet):
        data = gpu_wifi_analyzer.evaluate(alexnet).to_dict()
        assert data["architecture_name"] == "alexnet"
        assert len(data["options"]) >= 3
        assert "best_latency" in data and "best_energy" in data


class TestBestDeploymentInvariants:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_best_options_never_worse_than_extremes(self, seed):
        """For any candidate, the best deployment is at least as good as both
        All-Edge and All-Cloud (Algorithm 1 minimises over a superset)."""
        space = LensSearchSpace()
        from repro.hardware.device import jetson_tx2_gpu

        predictor = OracleLayerPredictor(jetson_tx2_gpu())
        channel = WirelessChannel.create("wifi", 3.0, 0.01)
        analyzer = PartitionAnalyzer(predictor, channel)
        architecture = space.decode_for_performance(space.sample(seed))
        evaluation = analyzer.evaluate(architecture)
        assert evaluation.best_latency.latency_s <= evaluation.all_edge.latency_s + 1e-12
        assert evaluation.best_latency.latency_s <= evaluation.all_cloud.latency_s + 1e-12
        assert evaluation.best_energy.energy_j <= evaluation.all_edge.energy_j + 1e-12
        assert evaluation.best_energy.energy_j <= evaluation.all_cloud.energy_j + 1e-12
