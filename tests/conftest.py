"""Shared fixtures for the test suite.

Expensive artefacts (trained performance predictors, search spaces, reference
architectures) are session-scoped so the whole suite stays fast while every
test still works with realistic objects.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accuracy.surrogate import AccuracySurrogate
from repro.hardware.device import jetson_tx2_cpu, jetson_tx2_gpu
from repro.hardware.predictors import LayerPerformancePredictor, OracleLayerPredictor
from repro.nn.alexnet import build_alexnet
from repro.nn.search_space import LensSearchSpace
from repro.partition.partitioner import PartitionAnalyzer
from repro.wireless.channel import WirelessChannel


@pytest.fixture(scope="session")
def gpu_device():
    """The TX2-class GPU device profile."""
    return jetson_tx2_gpu()


@pytest.fixture(scope="session")
def cpu_device():
    """The TX2-class CPU device profile."""
    return jetson_tx2_cpu()


@pytest.fixture(scope="session")
def gpu_oracle(gpu_device):
    """Noise-free per-layer predictor for the GPU device."""
    return OracleLayerPredictor(gpu_device)


@pytest.fixture(scope="session")
def cpu_oracle(cpu_device):
    """Noise-free per-layer predictor for the CPU device."""
    return OracleLayerPredictor(cpu_device)


@pytest.fixture(scope="session")
def gpu_predictor(gpu_device):
    """Regression predictor trained from simulated profiling data (small sweep)."""
    return LayerPerformancePredictor.train_for_device(
        gpu_device, noise_std=0.02, samples_per_type=80, seed=0
    )


@pytest.fixture(scope="session")
def alexnet():
    """The AlexNet reference architecture with a 224x224x3 input."""
    return build_alexnet()


@pytest.fixture(scope="session")
def search_space():
    """The paper's VGG-derived search space with default settings."""
    return LensSearchSpace()


@pytest.fixture(scope="session")
def small_search_space():
    """A reduced search space for fast search-loop tests."""
    return LensSearchSpace(
        num_blocks=3,
        layers_per_block=(1, 2),
        kernel_sizes=(3, 5),
        filter_counts=(24, 64),
        fc_units=(256, 1024),
        min_pool_layers=2,
    )


@pytest.fixture(scope="session")
def wifi_channel():
    """WiFi channel at the paper's design-time expectation of 3 Mbps."""
    return WirelessChannel.create("wifi", uplink_mbps=3.0, round_trip_s=0.01)


@pytest.fixture(scope="session")
def lte_channel():
    """LTE channel at a mid-range uplink throughput."""
    return WirelessChannel.create("lte", uplink_mbps=7.5, round_trip_s=0.01)


@pytest.fixture(scope="session")
def gpu_wifi_analyzer(gpu_oracle, wifi_channel):
    """Partition analyzer for the GPU/WiFi configuration."""
    return PartitionAnalyzer(gpu_oracle, wifi_channel)


@pytest.fixture(scope="session")
def surrogate():
    """The analytic accuracy surrogate."""
    return AccuracySurrogate()


@pytest.fixture
def rng():
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(1234)
