"""Tests for the shared, caching EvaluationEngine."""

import numpy as np
import pytest

from repro.api.engine import EvaluationEngine, default_engine
from repro.partition.partitioner import PartitionAnalyzer
from repro.wireless.channel import WirelessChannel


@pytest.fixture()
def engine():
    return EvaluationEngine()


class TestPredictorCache:
    def test_same_settings_share_one_predictor(self, engine, gpu_device):
        first = engine.predictor_for(gpu_device, samples_per_type=60, seed=3)
        second = engine.predictor_for(gpu_device, samples_per_type=60, seed=3)
        assert first is second
        assert engine.stats.predictor_hits == 1
        assert engine.stats.predictor_misses == 1

    def test_different_settings_do_not_collide(self, engine, gpu_device, cpu_device):
        a = engine.predictor_for(gpu_device, samples_per_type=60, seed=3)
        b = engine.predictor_for(gpu_device, samples_per_type=60, seed=4)
        c = engine.predictor_for(cpu_device, samples_per_type=60, seed=3)
        assert a is not b and a is not c

    def test_generator_seeds_bypass_the_cache(self, engine, gpu_device):
        rng = np.random.default_rng(0)
        first = engine.predictor_for(gpu_device, samples_per_type=60, seed=rng)
        second = engine.predictor_for(gpu_device, samples_per_type=60, seed=rng)
        assert first is not second

    def test_oracle_predictors_cached_separately(self, engine, gpu_device):
        oracle = engine.predictor_for(gpu_device, oracle=True)
        assert engine.predictor_for(gpu_device, oracle=True) is oracle
        trained = engine.predictor_for(gpu_device, samples_per_type=60, seed=0)
        assert trained is not oracle


class TestLayerAndPartitionCaches:
    def test_layer_predictions_cached_and_identical(self, engine, gpu_oracle, alexnet):
        first = engine.layer_predictions(gpu_oracle, alexnet)
        second = engine.layer_predictions(gpu_oracle, alexnet)
        assert first is second
        assert engine.stats.layer_hits == 1 and engine.stats.layer_misses == 1
        direct = gpu_oracle.predict_architecture(alexnet)
        assert [p.latency_s for p in first] == [p.latency_s for p in direct]

    def test_evaluate_partitions_matches_direct_evaluation(
        self, engine, gpu_oracle, alexnet
    ):
        channel = WirelessChannel.create("wifi", uplink_mbps=3.0)
        analyzer = PartitionAnalyzer(gpu_oracle, channel)
        via_engine = engine.evaluate_partitions(alexnet, analyzer)
        direct = analyzer.evaluate(alexnet)
        assert via_engine.best_latency.option == direct.best_latency.option
        assert via_engine.best_latency.latency_s == pytest.approx(
            direct.best_latency.latency_s
        )
        assert via_engine.best_energy.energy_j == pytest.approx(
            direct.best_energy.energy_j
        )

    def test_partition_cache_hits_per_channel(self, engine, gpu_oracle, alexnet):
        channel = WirelessChannel.create("wifi", uplink_mbps=3.0)
        analyzer = PartitionAnalyzer(gpu_oracle, channel)
        first = engine.evaluate_partitions(alexnet, analyzer)
        # A fresh analyzer with an equal channel must still hit the cache.
        second = engine.evaluate_partitions(
            alexnet, PartitionAnalyzer(gpu_oracle, channel.with_uplink(3.0))
        )
        assert first is second
        # A different uplink is a different cache entry with different costs.
        third = engine.evaluate_partitions(
            alexnet, PartitionAnalyzer(gpu_oracle, channel.with_uplink(30.0))
        )
        assert third is not first
        assert engine.stats.partition_hits == 1
        assert engine.stats.partition_misses == 2

    def test_sweep_channels_computes_layers_once(self, engine, gpu_oracle, alexnet):
        channels = [
            WirelessChannel.create("wifi", uplink_mbps=u) for u in (0.5, 3.0, 16.1)
        ]
        evaluations = engine.sweep_channels(alexnet, gpu_oracle, channels)
        assert len(evaluations) == 3
        # The batched sweep fetches the per-layer predictions exactly once
        # for the whole channel set and costs each channel once.
        assert engine.stats.layer_misses == 1
        assert engine.stats.layer_hits == 0
        assert engine.stats.partition_misses == 3
        # Costs must differ across channels (communication term changes).
        cloud_latencies = {e.all_cloud.latency_s for e in evaluations}
        assert len(cloud_latencies) == 3
        # A second sweep over the same channels is pure cache hits.
        again = engine.sweep_channels(alexnet, gpu_oracle, channels)
        assert [e.all_cloud.latency_s for e in again] == [
            e.all_cloud.latency_s for e in evaluations
        ]
        assert engine.stats.partition_misses == 3
        assert engine.stats.partition_hits == 3
        assert engine.stats.layer_misses == 1

    def test_clear_resets_everything(self, engine, gpu_oracle, alexnet):
        engine.layer_predictions(gpu_oracle, alexnet)
        engine.clear()
        assert engine.cache_sizes() == {
            "predictors": 0,
            "layer_predictions": 0,
            "partition_evaluations": 0,
        }
        assert engine.stats.layer_misses == 0


def test_default_engine_is_a_process_singleton():
    assert default_engine() is default_engine()
    assert isinstance(default_engine(), EvaluationEngine)
