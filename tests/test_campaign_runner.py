"""Campaign execution: grids, resume semantics, parallel equivalence."""

from __future__ import annotations

import json

import pytest

from repro.analysis.reporting import summarize_campaign
from repro.api.envelopes import request_fingerprint
from repro.api.registry import RegistryError
from repro.api.scenario import Scenario
from repro.campaign import CampaignSpec, RunStore, StoreError, run_campaign
from repro.campaign.gridspec import expand_requests

#: 3 scenarios x 2 strategies = 6 cells, milliseconds each.
SPEC = CampaignSpec(
    scenarios=(
        "wifi-3mbps/jetson-tx2-gpu",
        "lte-3mbps/jetson-tx2-gpu",
        "3g-3mbps/jetson-tx2-cpu",
    ),
    strategies=("lens", "random"),
    seeds=(0,),
    num_initial=4,
    num_iterations=2,
    candidate_pool_size=16,
    predictor_samples_per_type=40,
)


def _report_dict(store: RunStore) -> dict:
    """Store report with the wall-clock fields (the only nondeterminism) removed."""
    summary = summarize_campaign(store.outcomes()).to_dict()
    for cell in summary["cells"]:
        cell.pop("wall_time_s")
    return summary


class TestCampaignSpec:
    def test_grid_expansion_is_the_full_product(self):
        requests = SPEC.requests()
        assert len(requests) == SPEC.num_cells == 6
        cells = {(r.scenario_name, r.strategy, r.seed) for r in requests}
        assert len(cells) == 6
        fingerprints = {request_fingerprint(r) for r in requests}
        assert len(fingerprints) == 6

    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SPEC.to_dict()), encoding="utf-8")
        assert CampaignSpec.load(path) == SPEC

    def test_unknown_spec_fields_rejected(self):
        """A typo'd key must not silently run a different campaign."""
        payload = SPEC.to_dict()
        payload["seed"] = [0, 1, 2]  # should have been "seeds"
        with pytest.raises(ValueError, match=r"unknown campaign spec fields \['seed'\]"):
            CampaignSpec.from_dict(payload)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="must be non-empty"):
            CampaignSpec(scenarios=())

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            CampaignSpec(scenarios=("a", "a"))

    def test_validate_catches_unknown_names_upfront(self):
        bad = CampaignSpec(scenarios=("wifi-3mbps/jetson-tx2-gpu",),
                           strategies=("lense",))
        with pytest.raises(RegistryError, match="lens"):
            bad.validate()

    def test_expand_rejects_non_requests(self):
        with pytest.raises(TypeError, match="CampaignSpec or SearchRequests"):
            expand_requests(["not-a-request"])


class TestRunCampaign:
    def test_full_run_stores_every_cell(self, tmp_path):
        store = RunStore(tmp_path / "store")
        result = run_campaign(SPEC, store)
        assert len(result.executed) == 6
        assert result.skipped == ()
        assert sorted(store.fingerprints()) == sorted(
            request_fingerprint(r) for r in SPEC.requests()
        )

    def test_rerun_skips_everything(self, tmp_path):
        store = RunStore(tmp_path / "store")
        run_campaign(SPEC, store)
        again = run_campaign(SPEC, store)
        assert again.executed == ()
        assert sorted(again.skipped) == sorted(store.fingerprints())
        assert len(store) == 6

    def test_resume_executes_only_missing_cells(self, tmp_path):
        """A store pre-seeded with some fingerprints re-runs only the rest."""
        full = RunStore(tmp_path / "full")
        run_campaign(SPEC, full)

        preseeded = sorted(full.fingerprints())[:3]
        partial = RunStore(tmp_path / "partial")
        for fingerprint in preseeded:
            partial.append(full.get(fingerprint), fingerprint=fingerprint)

        events = []
        result = run_campaign(
            SPEC, partial,
            progress=lambda done, total, fp, outcome: events.append(
                (done, total, fp, outcome is None)
            ),
        )
        missing = set(full.fingerprints()) - set(preseeded)
        assert set(result.executed) == missing
        assert sorted(result.skipped) == preseeded
        # every cell reported exactly once, skips flagged as such
        assert [done for done, *_ in events] == list(range(1, 7))
        assert {fp for _, _, fp, was_skip in events if was_skip} == set(preseeded)
        # the resumed store reports identically to the fresh full run
        assert _report_dict(partial) == _report_dict(full)

    def test_no_resume_raises_on_stored_cells(self, tmp_path):
        store = RunStore(tmp_path / "store")
        run_campaign(SPEC, store)
        with pytest.raises(StoreError, match="already stored"):
            run_campaign(SPEC, store, resume=False)

    def test_duplicate_requests_run_once(self, tmp_path):
        requests = SPEC.requests()[:2]
        store = RunStore(tmp_path / "store")
        result = run_campaign(requests + requests, store)
        assert len(result.executed) == 2
        assert len(store) == 2

    def test_unknown_scenario_fails_before_any_cell_runs(self, tmp_path):
        store = RunStore(tmp_path / "store")
        bad = CampaignSpec(scenarios=("no-such-place/jetson-tx2-gpu",))
        with pytest.raises(RegistryError):
            run_campaign(bad, store)
        assert len(store) == 0

    def test_store_accepted_as_str_or_path(self, tmp_path):
        result = run_campaign(SPEC.requests()[:1], str(tmp_path / "a"))
        assert len(result.store) == 1
        result = run_campaign(SPEC.requests()[:1], tmp_path / "b")
        assert len(result.store) == 1


class TestParallelCampaign:
    def test_parallel_matches_serial(self, tmp_path):
        """workers=4 stores the same runs and reports the same winners."""
        serial = RunStore(tmp_path / "serial")
        run_campaign(SPEC, serial, workers=1)

        parallel = RunStore(tmp_path / "parallel")
        result = run_campaign(SPEC, parallel, workers=4)
        assert len(result.executed) == 6
        assert sorted(parallel.fingerprints()) == sorted(serial.fingerprints())
        assert _report_dict(parallel) == _report_dict(serial)

    def test_failing_cell_preserves_finished_work(self, tmp_path):
        """One bad cell raises, but completed cells are stored for resume."""
        good = SPEC.requests()[:2]
        bad = good[0].replace(
            # inline scenario whose device no worker registry knows
            scenario=Scenario(name="ghost/nowhere", device="ghost-device"),
        )
        store = RunStore(tmp_path / "store")
        with pytest.raises(RuntimeError, match="campaign cell .* failed"):
            run_campaign(good + [bad], store, workers=2)
        assert sorted(store.fingerprints()) == sorted(
            request_fingerprint(r) for r in good
        )

    def test_parallel_resume_executes_only_missing_cells(self, tmp_path):
        full = RunStore(tmp_path / "full")
        run_campaign(SPEC, full, workers=1)

        partial = RunStore(tmp_path / "partial")
        preseeded = sorted(full.fingerprints())[:4]
        for fingerprint in preseeded:
            partial.append(full.get(fingerprint), fingerprint=fingerprint)
        result = run_campaign(SPEC, partial, workers=2)
        assert set(result.executed) == set(full.fingerprints()) - set(preseeded)
        assert _report_dict(partial) == _report_dict(full)
