"""Property tests: the vectorized serving layer vs its scalar references.

The contract under test (see :mod:`repro.serving.fleet`): feeding the same
measurements to a :class:`FleetTracker`/:class:`FleetController` and to one
:class:`ThroughputTracker` + ``analysis.best_option`` loop per client must
produce *bitwise identical* EWMA estimates and *element-wise identical*
decisions and switch counts — including rounding-decided tie-breaks at exact
threshold crossings, where interval membership alone would disagree with the
scalar float comparison.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime import ThresholdAnalysis
from repro.partition.deployment import DeploymentMetrics, DeploymentOption
from repro.serving import FleetController, FleetTracker
from repro.serving.fleet import DecisionTable
from repro.wireless.power_models import RadioPowerModel
from repro.wireless.tracker import ThroughputTracker

WIFI = RadioPowerModel.for_technology("wifi")
RTT = 0.01


def edge_option(latency_s=0.04, energy_j=0.28):
    return DeploymentMetrics(
        option=DeploymentOption.all_edge(),
        latency_s=latency_s,
        energy_j=energy_j,
        edge_latency_s=latency_s,
        edge_energy_j=energy_j,
        comm_latency_s=0.0,
        comm_energy_j=0.0,
        transferred_bytes=0.0,
    )


def split_option(edge_latency_s=0.015, edge_energy_j=0.16,
                 transferred_bytes=36864.0):
    return DeploymentMetrics(
        option=DeploymentOption.split_after(7, "pool5"),
        latency_s=0.0,
        energy_j=0.0,
        edge_latency_s=edge_latency_s,
        edge_energy_j=edge_energy_j,
        comm_latency_s=0.0,
        comm_energy_j=0.0,
        transferred_bytes=transferred_bytes,
    )


def cloud_option(transferred_bytes=150528.0):
    return DeploymentMetrics(
        option=DeploymentOption.all_cloud(),
        latency_s=0.0,
        energy_j=0.0,
        edge_latency_s=0.0,
        edge_energy_j=0.0,
        comm_latency_s=0.0,
        comm_energy_j=0.0,
        transferred_bytes=transferred_bytes,
    )


def make_analysis(metric="energy"):
    return ThresholdAnalysis(
        options=[edge_option(), split_option(), cloud_option()],
        power_model=WIFI,
        round_trip_s=RTT,
        metric=metric,
    )


ANALYSES = {metric: make_analysis(metric) for metric in ("energy", "latency")}


def scalar_replay(analysis, uplinks, smoothing):
    """Per-client reference loop: one tracker + ``best_option`` per client.

    NaN measurements hold the previous decision, matching the serving
    layer's idle-client semantics.
    """
    ticks, num_clients = uplinks.shape
    smoothing = np.broadcast_to(np.asarray(smoothing, dtype=np.float64),
                                (num_clients,))
    trackers = [ThroughputTracker(smoothing=float(s)) for s in smoothing]
    options = list(analysis.options)
    decisions = np.full((ticks, num_clients), -1, dtype=np.intp)
    last = [-1] * num_clients
    switches = [0] * num_clients
    for tick in range(ticks):
        for client in range(num_clients):
            value = uplinks[tick, client]
            if np.isnan(value):
                decisions[tick, client] = last[client]
                continue
            estimate = trackers[client].observe(float(value))
            best = analysis.best_option(estimate)
            index = next(i for i, m in enumerate(options) if m is best)
            if last[client] >= 0 and index != last[client]:
                switches[client] += 1
            last[client] = index
            decisions[tick, client] = index
    estimates = np.array(
        [np.nan if t.estimate_mbps is None else t.estimate_mbps
         for t in trackers],
        dtype=np.float64,
    )
    return estimates, decisions, np.array(switches, dtype=np.int64)


def vector_replay(analysis, uplinks, smoothing, method="auto"):
    ticks, num_clients = uplinks.shape
    tracker = FleetTracker(num_clients, smoothing=smoothing)
    controller = FleetController(analysis, num_clients, method=method)
    decisions = np.empty((ticks, num_clients), dtype=np.intp)
    for tick in range(ticks):
        decisions[tick] = controller.decide(tracker.observe(uplinks[tick]))
    return tracker.estimates_mbps, decisions, controller.switches


def assert_replays_match(analysis, uplinks, smoothing, method="auto"):
    scalar = scalar_replay(analysis, uplinks, smoothing)
    vector = vector_replay(analysis, uplinks, smoothing, method=method)
    # Estimates: bitwise identical (same float expression, same order).
    np.testing.assert_array_equal(scalar[0], vector[0])
    np.testing.assert_array_equal(scalar[1], vector[1])
    np.testing.assert_array_equal(scalar[2], vector[2])


measurement = st.one_of(
    st.just(float("nan")),  # idle tick
    st.floats(min_value=0.01, max_value=500.0,
              allow_nan=False, allow_infinity=False),
)


@st.composite
def fleets(draw):
    num_clients = draw(st.integers(min_value=1, max_value=6))
    ticks = draw(st.integers(min_value=1, max_value=10))
    uplinks = np.array(
        draw(
            st.lists(
                st.lists(measurement, min_size=num_clients,
                         max_size=num_clients),
                min_size=ticks, max_size=ticks,
            )
        ),
        dtype=np.float64,
    )
    smoothing = np.array(
        draw(
            st.lists(
                st.floats(min_value=0.05, max_value=1.0,
                          allow_nan=False),
                min_size=num_clients, max_size=num_clients,
            )
        ),
        dtype=np.float64,
    )
    metric = draw(st.sampled_from(("energy", "latency")))
    return uplinks, smoothing, metric


class TestElementwiseParity:
    @given(fleet=fleets())
    @settings(max_examples=60, deadline=None)
    def test_random_fleets_match_scalar_loop(self, fleet):
        uplinks, smoothing, metric = fleet
        assert_replays_match(ANALYSES[metric], uplinks, smoothing)

    @given(fleet=fleets(),
           method=st.sampled_from(("intervals", "values")))
    @settings(max_examples=30, deadline=None)
    def test_every_decision_method_matches(self, fleet, method):
        uplinks, smoothing, metric = fleet
        assert_replays_match(ANALYSES[metric], uplinks, smoothing,
                             method=method)


class TestExactThresholdTieBreaking:
    @pytest.mark.parametrize("metric", ["energy", "latency"])
    @pytest.mark.parametrize("method", ["auto", "intervals", "values"])
    def test_decisions_at_exact_crossings(self, metric, method):
        """Measurements *at* (and one ulp around) every threshold agree."""
        analysis = ANALYSES[metric]
        table = DecisionTable.from_analysis(analysis)
        assert table.thresholds.size, "fixture options must cross somewhere"
        probes = []
        for threshold in table.thresholds:
            probes.extend([
                np.nextafter(threshold, 0.0),
                threshold,
                np.nextafter(threshold, np.inf),
            ])
        uplinks = np.array([probes], dtype=np.float64)  # one tick, N clients
        assert_replays_match(analysis, uplinks, 1.0, method=method)

    @pytest.mark.parametrize("method", ["auto", "intervals", "values"])
    def test_ewma_landing_on_threshold(self, method):
        """Estimates (not raw measurements) hitting a threshold still agree."""
        analysis = ANALYSES["energy"]
        table = DecisionTable.from_analysis(analysis)
        threshold = float(table.thresholds[0])
        # With s = 0.5 and prior == threshold, feeding the threshold twice
        # keeps the EWMA exactly on the crossing for several ticks.
        uplinks = np.full((4, 3), threshold, dtype=np.float64)
        uplinks[1, 1] = np.nextafter(threshold, 0.0)
        uplinks[2, 2] = np.nextafter(threshold, np.inf)
        assert_replays_match(analysis, uplinks, 0.5, method=method)


class TestDegenerateAnalyses:
    def test_indistinguishable_options_force_exact_method(self):
        """Near-identical cost curves: auto falls back to exact comparison."""
        twin_a = edge_option(latency_s=0.04, energy_j=0.28)
        twin_b = DeploymentMetrics(
            option=DeploymentOption.split_after(3, "conv3"),
            latency_s=0.04,
            energy_j=0.28,
            edge_latency_s=0.04,
            edge_energy_j=0.28,
            comm_latency_s=0.0,
            comm_energy_j=0.0,
            transferred_bytes=0.0,
        )
        analysis = ThresholdAnalysis(
            options=[twin_a, twin_b],
            power_model=WIFI,
            round_trip_s=RTT,
            metric="energy",
        )
        controller = FleetController(analysis, 4)
        assert controller.table.degenerate
        assert controller.method == "values"
        uplinks = np.array([[0.5, 1.0, 5.0, 50.0]], dtype=np.float64)
        assert_replays_match(analysis, uplinks, 1.0)


class TestTrackerStateParity:
    @given(
        values=st.lists(
            st.floats(min_value=0.01, max_value=500.0, allow_nan=False),
            min_size=1, max_size=20,
        ),
        smoothing=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_client_estimates_bitwise_equal(self, values, smoothing):
        scalar = ThroughputTracker(smoothing=smoothing)
        fleet = FleetTracker(1, smoothing=smoothing)
        for value in values:
            expected = scalar.observe(value)
            got = fleet.observe(np.array([value]))[0]
            assert got == expected  # bitwise, not approx
        assert fleet.num_observations[0] == scalar.num_observations

    def test_priors_match_scalar_initial_estimate(self):
        scalar = ThroughputTracker(smoothing=0.3, initial_mbps=4.2)
        fleet = FleetTracker(2, smoothing=0.3, initial_mbps=[4.2, np.nan])
        assert fleet.estimates_mbps[0] == scalar.estimate_mbps
        assert np.isnan(fleet.estimates_mbps[1])
        expected = scalar.observe(6.0)
        got = fleet.observe(np.array([6.0, 6.0]))
        assert got[0] == expected
        assert got[1] == 6.0  # no prior: first observation wins
