"""Tests for the resilience layer: health log, degradation ladder, faults.

The degradation ladder is exercised both directly (near-singular kernel
matrices, hypothesis-generated duplicate-row designs) and through
deterministic fault injection (:mod:`repro.resilience.faults`); the
quarantine tests pin the non-finite-objective policy of the MOBO loop.
Checkpoint/resume behaviour lives in ``tests/test_checkpoint_resume.py``.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optim.gp import DEFAULT_JITTER, MAX_JITTER, GaussianProcess, escalating_cholesky
from repro.optim.gp_bank import GPBank
from repro.optim.kernels import Matern52Kernel
from repro.optim.mobo import MultiObjectiveBayesianOptimizer
from repro.resilience import faults
from repro.resilience.faults import FaultInjector, KilledByFault
from repro.resilience.health import (
    HEALTH_CODES,
    HealthEvent,
    HealthLog,
    summarize_health,
)

# ---------------------------------------------------------------------- helpers

GRID = 21


def _sample(rng):
    return np.array([rng.integers(0, GRID), rng.integers(0, GRID)])


def _features(candidate):
    return np.asarray(candidate, dtype=float) / (GRID - 1)


def _objectives(candidate):
    x = np.asarray(candidate, dtype=float) / (GRID - 1)
    f1 = x[0]
    f2 = (1 + x[1]) * (1 - np.sqrt(x[0] / (1 + x[1])))
    return np.array([f1, f2]), {"x": x.tolist()}


def _make_optimizer(**overrides):
    kwargs = dict(
        sample_fn=_sample,
        feature_fn=_features,
        objective_fn=_objectives,
        num_objectives=2,
        num_initial=6,
        num_iterations=12,
        candidate_pool_size=40,
        seed=0,
    )
    kwargs.update(overrides)
    return MultiObjectiveBayesianOptimizer(**kwargs)


# ---------------------------------------------------------------------- health log


class TestHealthLog:
    def test_record_and_counters(self):
        log = HealthLog()
        log.record("H_JITTER_ESCALATED", "site=fit", jitter=1e-6)
        log.record("H_JITTER_ESCALATED", "site=extend")
        log.record("H_EXACT_REFIT")
        assert len(log) == 3
        assert log.count("H_JITTER_ESCALATED") == 2
        assert log.counters() == {"H_EXACT_REFIT": 1, "H_JITTER_ESCALATED": 2}

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError):
            HealthLog().record("H_NO_SUCH_CODE")
        with pytest.raises(ValueError):
            HealthEvent(code="bogus")

    def test_empty_log_is_truthy_object(self):
        # `context.health or HealthLog()` must never discard an attached log.
        assert bool(HealthLog()) is True
        assert len(HealthLog()) == 0

    def test_attach_persists_past_and_future_events(self, tmp_path):
        log = HealthLog()
        log.record("H_EXACT_REFIT", "before attach")
        sink = tmp_path / "health.jsonl"
        log.attach(sink)
        log.record("H_RESUMED", "after attach", replayed=5)
        lines = [json.loads(line) for line in sink.read_text().splitlines()]
        assert [entry["code"] for entry in lines] == ["H_EXACT_REFIT", "H_RESUMED"]
        assert lines[1]["context"] == {"replayed": 5}
        roundtrip = HealthEvent.from_dict(lines[1])
        assert roundtrip.code == "H_RESUMED"

    def test_summarize_health_merges(self):
        merged = summarize_health(
            [
                {"H_EXACT_REFIT": 1, "H_RESUMED": 1},
                {},
                None,
                {"H_EXACT_REFIT": 2},
            ]
        )
        assert merged == {"H_EXACT_REFIT": 3, "H_RESUMED": 1}

    def test_every_code_has_a_legend(self):
        for code, description in HEALTH_CODES.items():
            assert code.startswith("H_")
            assert description


# ---------------------------------------------------------------------- jitter ladder


class TestEscalatingCholesky:
    def test_healthy_matrix_needs_no_jitter(self):
        K = np.eye(4) + 0.1
        health = HealthLog()
        L = escalating_cholesky(K, health=health)
        assert np.allclose(L @ L.T, K)
        assert len(health) == 0

    def test_singular_matrix_recovers_with_jitter(self):
        # Rank-1 Gram matrix: plain Cholesky fails, the ladder must recover.
        v = np.ones((5, 1))
        K = v @ v.T
        health = HealthLog()
        L = escalating_cholesky(K, health=health, site="fit")
        assert np.all(np.isfinite(L))
        assert health.count("H_JITTER_ESCALATED") == 1
        added = health.events[0].context["jitter"]
        assert DEFAULT_JITTER < added <= MAX_JITTER
        assert np.allclose(L @ L.T, K + added * np.eye(5))

    def test_hopeless_matrix_still_raises(self):
        with pytest.raises(np.linalg.LinAlgError):
            escalating_cholesky(-np.eye(3), health=HealthLog())

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=12),
        num_duplicates=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_duplicate_row_kernels_never_crash(self, n, num_duplicates, seed):
        # Duplicated design rows make kernel matrices exactly singular
        # (identical rows/columns) — the classic failure of a GP fit on a
        # search that revisits a genotype.  The ladder must always produce
        # a finite factor or raise LinAlgError — never return garbage.
        rng = np.random.default_rng(seed)
        X = rng.uniform(size=(n, 3))
        X = np.vstack([X] + [X[:1]] * num_duplicates)  # duplicate the first row
        kernel = Matern52Kernel(lengthscale=1.0)
        K = kernel(X, X)
        health = HealthLog()
        try:
            L = escalating_cholesky(K, health=health)
        except np.linalg.LinAlgError:
            return
        assert np.all(np.isfinite(L))
        reconstructed = L @ L.T
        assert np.all(np.isfinite(reconstructed))
        assert np.abs(reconstructed - K).max() <= MAX_JITTER * 1.01


class TestGaussianProcessLadder:
    def test_fit_on_duplicate_rows_succeeds(self):
        # The base observation noise keeps exactly-duplicated rows PD, so
        # this must fit cleanly without even consulting the ladder.
        X = np.vstack([np.full((4, 2), 0.5), np.full((4, 2), 0.5)])
        y = np.linspace(0.0, 1.0, 8)
        health = HealthLog()
        gp = GaussianProcess(kernel=Matern52Kernel(lengthscale=1.0), health=health)
        gp.fit(X, y)
        mean, std = gp.predict(np.array([[0.5, 0.5]]))
        assert np.all(np.isfinite(mean)) and np.all(np.isfinite(std))
        assert len(health) == 0

    def test_injected_fit_failure_recovers_with_jitter(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(8, 2))
        y = rng.uniform(size=8)
        health = HealthLog()
        gp = GaussianProcess(kernel=Matern52Kernel(lengthscale=1.0), health=health)
        with faults.inject(FaultInjector(linalg_failures=1)):
            gp.fit(X, y)
        mean, std = gp.predict(X)
        assert np.all(np.isfinite(mean)) and np.all(np.isfinite(std))
        assert health.count("H_JITTER_ESCALATED") == 1


class TestGPBankLadder:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_near_singular_updates_never_crash(self, seed):
        # Streams with many duplicated rows; the bank may escalate jitter,
        # fall back to exact refits or heterogeneous fits — anything but
        # crashing or returning non-finite posteriors.
        rng = np.random.default_rng(seed)
        base = rng.uniform(size=(4, 3))
        X = np.vstack([base, base, base[:2]])  # heavy duplication
        Y = rng.uniform(size=(X.shape[0], 2))
        health = HealthLog()
        bank = GPBank(2, kernel=Matern52Kernel(lengthscale=1.0), health=health)
        for n in range(2, X.shape[0] + 1):
            bank.update(X[:n], Y[:n])
        mean, std = bank.predict(rng.uniform(size=(5, 3)))
        assert np.all(np.isfinite(mean)) and np.all(np.isfinite(std))

    def test_injected_failures_degrade_through_the_ladder(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(8, 3))
        Y = rng.uniform(size=(8, 2))
        health = HealthLog()
        bank = GPBank(2, kernel=Matern52Kernel(lengthscale=1.0), health=health)
        # enough failures to defeat one full jitter ladder (7 attempts per
        # site) several times over, forcing exact-refit/heterogeneous rungs
        with faults.inject(FaultInjector(linalg_failures=20)):
            for n in range(2, X.shape[0] + 1):
                bank.update(X[:n], Y[:n])
        mean, std = bank.predict(X)
        assert np.all(np.isfinite(mean)) and np.all(np.isfinite(std))
        assert len(health) >= 1
        assert set(health.counters()) <= {
            "H_JITTER_ESCALATED",
            "H_EXACT_REFIT",
            "H_HETEROGENEOUS_FALLBACK",
        }


# ---------------------------------------------------------------------- quarantine


class TestQuarantine:
    def test_nan_objectives_quarantined_by_default(self):
        health = HealthLog()
        bad = _make_optimizer(
            objective_fn=lambda c: np.array([np.nan, 1.0]), health=health
        )
        result = bad.run()
        assert len(result) == 0
        assert len(bad.quarantined) == 18
        assert len(bad.archive) == 0
        assert health.count("H_OBJECTIVE_QUARANTINED") == 18
        assert all(p.metadata.get("quarantined") for p in bad.quarantined)

    def test_inf_objectives_quarantined(self):
        health = HealthLog()
        bad = _make_optimizer(
            objective_fn=lambda c: np.array([np.inf, 1.0]),
            num_iterations=2,
            health=health,
        )
        bad.run()
        assert health.count("H_OBJECTIVE_QUARANTINED") == 8

    def test_empty_objectives_quarantined(self):
        health = HealthLog()
        bad = _make_optimizer(
            objective_fn=lambda c: np.array([]), num_iterations=2, health=health
        )
        result = bad.run()
        assert len(result) == 0
        assert health.count("H_OBJECTIVE_QUARANTINED") == 8

    def test_strict_mode_raises_instead(self):
        bad = _make_optimizer(
            objective_fn=lambda c: np.array([np.nan, 1.0]), strict=True
        )
        with pytest.raises(ValueError):
            bad.run()

    def test_partial_poisoning_keeps_archive_clean(self):
        # Only evaluation indices 2 and 5 are poisoned (via the injector);
        # everything else proceeds, and the archive holds only finite rows.
        health = HealthLog()
        optimizer = _make_optimizer(health=health)
        with faults.inject(FaultInjector(nan_evaluations=(2, 5))):
            result = optimizer.run()
        assert len(result) == 16
        assert len(optimizer.quarantined) == 2
        assert health.count("H_OBJECTIVE_QUARANTINED") == 2
        assert np.all(np.isfinite(result.objective_matrix()))
        archive = optimizer.archive.objective_matrix()
        assert np.all(np.isfinite(archive))

    def test_healthy_run_identical_with_and_without_health_log(self):
        # Attaching a health log must not consume RNG or perturb results —
        # the fingerprint-neutrality guarantee.
        plain = _make_optimizer(seed=5).run().objective_matrix()
        health = HealthLog()
        logged = _make_optimizer(seed=5, health=health).run().objective_matrix()
        assert np.array_equal(plain, logged)
        assert len(health) == 0


# ---------------------------------------------------------------------- retries


class TestObjectiveRetry:
    def test_flaky_objective_retried(self):
        calls = {"n": 0}

        def flaky(candidate):
            calls["n"] += 1
            if calls["n"] % 3 == 1:  # every third call fails first
                raise RuntimeError("transient")
            return _objectives(candidate)

        health = HealthLog()
        optimizer = _make_optimizer(
            objective_fn=flaky,
            batch_objective_fn=None,
            num_iterations=4,
            objective_retries=2,
            health=health,
        )
        result = optimizer.run()
        assert len(result) == 10
        assert health.count("H_OBJECTIVE_RETRY") >= 1

    def test_retry_budget_exhausted_raises(self):
        def always_fails(candidate):
            raise RuntimeError("permanent")

        optimizer = _make_optimizer(
            objective_fn=always_fails, objective_retries=1, num_iterations=2
        )
        with pytest.raises(RuntimeError, match="permanent"):
            optimizer.run()

    def test_injected_objective_faults_absorbed_by_retries(self):
        health = HealthLog()
        optimizer = _make_optimizer(
            num_iterations=4, objective_retries=3, health=health
        )
        with faults.inject(FaultInjector(objective_failures=2)):
            result = optimizer.run()
        assert len(result) == 10
        assert health.count("H_OBJECTIVE_RETRY") == 2

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            _make_optimizer(objective_retries=-1)


# ---------------------------------------------------------------------- fault injector


class TestFaultInjector:
    def test_consults_decrement(self):
        injector = FaultInjector(linalg_failures=2, objective_failures=1)
        assert injector.take_linalg_fault() and injector.take_linalg_fault()
        assert not injector.take_linalg_fault()
        assert injector.take_objective_fault()
        assert not injector.take_objective_fault()

    def test_nan_membership(self):
        injector = FaultInjector(nan_evaluations=(1, 4))
        assert injector.take_nan_objectives(1)
        assert injector.take_nan_objectives(4)
        assert not injector.take_nan_objectives(2)

    def test_raise_mode_kill(self):
        injector = FaultInjector(kill_at_evaluation=3, kill_mode="raise")
        injector.on_evaluation_complete(0)
        injector.on_evaluation_complete(1)
        with pytest.raises(KilledByFault):
            injector.on_evaluation_complete(2)

    def test_killed_by_fault_evades_except_exception(self):
        # The whole point: worker-style `except Exception` recovery must not
        # swallow a simulated crash.
        with pytest.raises(KilledByFault):
            try:
                raise KilledByFault("boom")
            except Exception:  # noqa: BLE001
                pytest.fail("KilledByFault must not be an Exception")

    def test_invalid_kill_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(kill_mode="nuke")

    def test_inject_scope_restores(self):
        assert faults.active() is None
        with faults.inject(FaultInjector(linalg_failures=1)) as injector:
            assert faults.active() is injector
        assert faults.active() is None

    def test_install_from_env_parses(self):
        environ = {
            "REPRO_FAULT_LINALG": "3",
            "REPRO_FAULT_NAN_EVALS": "2,5",
            "REPRO_FAULT_OBJECTIVE": "1",
            "REPRO_FAULT_KILL_AT_EVAL": "9",
        }
        try:
            injector = faults.install_from_env(environ)
            assert injector is not None
            assert injector.linalg_failures == 3
            assert injector.nan_evaluations == {2, 5}
            assert injector.objective_failures == 1
            assert injector.kill_at_evaluation == 9
        finally:
            faults.install(None)

    def test_install_from_env_noop_without_vars(self):
        assert faults.install_from_env({}) is None
        assert faults.active() is None

    def test_programmatic_injector_wins_over_env(self):
        programmatic = FaultInjector(linalg_failures=1)
        with faults.inject(programmatic):
            returned = faults.install_from_env({"REPRO_FAULT_LINALG": "99"})
            assert returned is programmatic
            assert faults.active() is programmatic
