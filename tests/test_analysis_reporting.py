"""Tests for the Markdown experiment-report builder."""

import pytest

from repro.analysis.criteria import compare_criteria, paper_criteria
from repro.analysis.pareto_metrics import compare_fronts
from repro.analysis.reporting import ExperimentReport, _markdown_table
from repro.analysis.runtime_eval import run_runtime_study
from repro.core.results import CandidateEvaluation, SearchResult
from repro.partition.deployment import DeploymentOption
from repro.wireless.traces import generate_lte_trace


def candidate(name, error, energy_mj, latency_ms=40.0):
    return CandidateEvaluation(
        genotype=(0,),
        architecture_name=name,
        error_percent=error,
        latency_s=latency_ms / 1e3,
        energy_j=energy_mj / 1e3,
        best_latency_option=DeploymentOption.all_edge(),
        best_energy_option=DeploymentOption.split_after(3, "pool3"),
        all_edge_latency_s=latency_ms / 1e3,
        all_edge_energy_j=energy_mj / 1e3,
    )


@pytest.fixture
def lens_result():
    return SearchResult(
        [candidate("a", 20.0, 300.0), candidate("b", 28.0, 150.0), candidate("c", 35.0, 500.0)],
        label="lens",
    )


@pytest.fixture
def baseline_result():
    return SearchResult(
        [candidate("x", 22.0, 400.0), candidate("y", 30.0, 250.0)],
        label="traditional",
    )


def test_markdown_table_shape_and_validation():
    table = _markdown_table(["a", "b"], [[1, 2.5], ["x", "y"]])
    lines = table.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert "2.500" in lines[2]
    with pytest.raises(ValueError):
        _markdown_table(["a", "b"], [[1]])


def test_search_summary_section(lens_result):
    report = ExperimentReport().add_search_summary(lens_result)
    text = report.render_markdown()
    assert "Search summary — lens" in text
    assert "Explored **3** architectures" in text
    assert "Split@pool3" in text
    assert report.num_sections == 1


def test_front_comparison_section(lens_result, baseline_result):
    comparison = compare_fronts(lens_result, baseline_result)
    text = ExperimentReport().add_front_comparison(comparison).render_markdown()
    assert "lens dominates traditional" in text
    assert "combined frontier share of lens" in text


def test_criteria_section(lens_result, baseline_result):
    comparisons = compare_criteria(lens_result, baseline_result, paper_criteria())
    text = ExperimentReport().add_criteria_comparison(comparisons).render_markdown()
    assert "Err < 25" in text
    assert "Ergy < 200" in text


def test_runtime_section(alexnet, gpu_oracle, wifi_channel):
    study = run_runtime_study(
        "model A",
        alexnet,
        gpu_oracle,
        wifi_channel,
        generate_lte_trace(num_samples=10, mean_mbps=6.0, seed=0),
        metric="energy",
    )
    text = ExperimentReport().add_runtime_study(study).render_markdown()
    assert "Runtime study — model A (energy)" in text
    assert "dynamic" in text
    assert "Switching threshold" in text


def test_full_report_round_trip(tmp_path, lens_result, baseline_result):
    report = (
        ExperimentReport(title="Custom reproduction")
        .add_text("Setup", "WiFi at 3 Mbps, TX2-GPU.")
        .add_search_summary(lens_result)
        .add_front_comparison(compare_fronts(lens_result, baseline_result))
    )
    path = report.write(tmp_path / "report" / "experiments.md")
    content = path.read_text()
    assert content.startswith("# Custom reproduction")
    assert content.count("## ") == 3
    assert report.num_sections == 3
