"""Tests for the Markdown experiment-report builder and campaign aggregation."""

import numpy as np
import pytest

from repro.analysis.criteria import compare_criteria, paper_criteria
from repro.analysis.pareto_metrics import compare_fronts
from repro.analysis.reporting import (
    ExperimentReport,
    _markdown_table,
    combined_front_shares,
    merged_results,
    summarize_campaign,
)
from repro.analysis.runtime_eval import run_runtime_study
from repro.api.envelopes import SearchOutcome, SearchRequest
from repro.api.scenario import scenario_by_name
from repro.core.results import CandidateEvaluation, SearchResult
from repro.optim.pareto import FrontHistory, compute_front_history
from repro.partition.deployment import DeploymentOption
from repro.wireless.traces import generate_lte_trace


def candidate(name, error, energy_mj, latency_ms=40.0):
    return CandidateEvaluation(
        genotype=(0,),
        architecture_name=name,
        error_percent=error,
        latency_s=latency_ms / 1e3,
        energy_j=energy_mj / 1e3,
        best_latency_option=DeploymentOption.all_edge(),
        best_energy_option=DeploymentOption.split_after(3, "pool3"),
        all_edge_latency_s=latency_ms / 1e3,
        all_edge_energy_j=energy_mj / 1e3,
    )


@pytest.fixture
def lens_result():
    return SearchResult(
        [candidate("a", 20.0, 300.0), candidate("b", 28.0, 150.0), candidate("c", 35.0, 500.0)],
        label="lens",
    )


@pytest.fixture
def baseline_result():
    return SearchResult(
        [candidate("x", 22.0, 400.0), candidate("y", 30.0, 250.0)],
        label="traditional",
    )


def test_markdown_table_shape_and_validation():
    table = _markdown_table(["a", "b"], [[1, 2.5], ["x", "y"]])
    lines = table.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert "2.500" in lines[2]
    with pytest.raises(ValueError):
        _markdown_table(["a", "b"], [[1]])


def test_search_summary_section(lens_result):
    report = ExperimentReport().add_search_summary(lens_result)
    text = report.render_markdown()
    assert "Search summary — lens" in text
    assert "Explored **3** architectures" in text
    assert "Split@pool3" in text
    assert report.num_sections == 1


def test_front_comparison_section(lens_result, baseline_result):
    comparison = compare_fronts(lens_result, baseline_result)
    text = ExperimentReport().add_front_comparison(comparison).render_markdown()
    assert "lens dominates traditional" in text
    assert "combined frontier share of lens" in text


def test_criteria_section(lens_result, baseline_result):
    comparisons = compare_criteria(lens_result, baseline_result, paper_criteria())
    text = ExperimentReport().add_criteria_comparison(comparisons).render_markdown()
    assert "Err < 25" in text
    assert "Ergy < 200" in text


def test_runtime_section(alexnet, gpu_oracle, wifi_channel):
    study = run_runtime_study(
        "model A",
        alexnet,
        gpu_oracle,
        wifi_channel,
        generate_lte_trace(num_samples=10, mean_mbps=6.0, seed=0),
        metric="energy",
    )
    text = ExperimentReport().add_runtime_study(study).render_markdown()
    assert "Runtime study — model A (energy)" in text
    assert "dynamic" in text
    assert "Switching threshold" in text


def outcome(scenario_name, strategy, candidates, seed=0, search_space="lens-vgg"):
    return SearchOutcome(
        request=SearchRequest(
            scenario=scenario_name, strategy=strategy, seed=seed,
            search_space=search_space,
        ),
        scenario=scenario_by_name(scenario_name),
        label=strategy,
        candidates=tuple(candidates),
        wall_time_s=1.0,
    )


@pytest.fixture
def campaign_outcomes():
    wifi, lte = "wifi-3mbps/jetson-tx2-gpu", "lte-3mbps/jetson-tx2-gpu"
    return [
        # wifi: lens dominates everywhere
        outcome(wifi, "lens", [candidate("a", 20.0, 200.0), candidate("b", 25.0, 150.0)]),
        outcome(wifi, "random", [candidate("r", 30.0, 400.0)]),
        # lte: both strategies own part of the combined frontier, random more
        outcome(lte, "lens", [candidate("c", 24.0, 300.0)]),
        outcome(lte, "random",
                [candidate("s", 20.0, 500.0), candidate("t", 28.0, 100.0)]),
        # second lens seed on lte pools into the same cell
        outcome(lte, "lens", [candidate("d", 26.0, 350.0)], seed=1),
    ]


def test_merged_results_pools_seeds_per_cell(campaign_outcomes):
    merged = merged_results(campaign_outcomes)
    assert sorted(merged) == [
        ("lte-3mbps/jetson-tx2-gpu", "lens-vgg"),
        ("wifi-3mbps/jetson-tx2-gpu", "lens-vgg"),
    ]
    lte = merged[("lte-3mbps/jetson-tx2-gpu", "lens-vgg")]
    assert len(lte["lens"]) == 2  # both seeds pooled
    assert lte["lens"].label == "lens"


def test_merged_results_keeps_search_spaces_apart():
    wifi = "wifi-3mbps/jetson-tx2-gpu"
    merged = merged_results([
        outcome(wifi, "lens", [candidate("a", 20.0, 200.0)]),
        outcome(wifi, "lens", [candidate("b", 25.0, 100.0)],
                search_space="seq-conv1d"),
    ])
    assert sorted(merged) == [(wifi, "lens-vgg"), (wifi, "seq-conv1d")]
    assert len(merged[(wifi, "lens-vgg")]["lens"]) == 1
    assert len(merged[(wifi, "seq-conv1d")]["lens"]) == 1


def test_combined_front_shares_partition_the_front():
    results = {
        "lens": SearchResult([candidate("a", 20.0, 200.0)], label="lens"),
        "random": SearchResult([candidate("r", 25.0, 100.0)], label="random"),
    }
    shares, front_size = combined_front_shares(results)
    assert front_size == 2  # neither dominates the other
    assert shares == {"lens": 0.5, "random": 0.5}


def test_summarize_campaign_cells_and_winners(campaign_outcomes):
    summary = summarize_campaign(campaign_outcomes)
    assert summary.num_runs == 5
    by_cell = {(c.scenario, c.strategy): c for c in summary.cells}
    lens_lte = by_cell[("lte-3mbps/jetson-tx2-gpu", "lens")]
    assert lens_lte.search_space == "lens-vgg"
    assert lens_lte.num_runs == 2
    assert lens_lte.seeds == (0, 1)
    assert lens_lte.num_candidates == 2
    assert lens_lte.best["error_percent"] == 24.0

    assert summary.winner_for("wifi-3mbps/jetson-tx2-gpu") == "lens"
    # lte combined front: random's extremes plus lens's c — random owns 2/3
    assert summary.winner_for("lte-3mbps/jetson-tx2-gpu") == "random"
    with pytest.raises(KeyError):
        summary.winner_for("3g-3mbps/jetson-tx2-gpu")


def test_summarize_campaign_never_pools_across_spaces():
    """Multi-space campaigns keep one Pareto front per (scenario, space);
    a workload whose candidates would dominate another's must not erase
    the other space's winner row."""
    wifi = "wifi-3mbps/jetson-tx2-gpu"
    summary = summarize_campaign([
        # lens-vgg cell: modest candidates
        outcome(wifi, "lens", [candidate("a", 25.0, 300.0)]),
        outcome(wifi, "random", [candidate("r", 30.0, 400.0)]),
        # seq-conv1d cell: numerically dominating candidates (cheap 1-D models)
        outcome(wifi, "random", [candidate("s", 10.0, 10.0)],
                search_space="seq-conv1d"),
    ])
    assert [(c.scenario, c.search_space, c.strategy) for c in summary.cells] == [
        (wifi, "lens-vgg", "lens"),
        (wifi, "lens-vgg", "random"),
        (wifi, "seq-conv1d", "random"),
    ]
    assert summary.winner_for(wifi, search_space="lens-vgg") == "lens"
    assert summary.winner_for(wifi, search_space="seq-conv1d") == "random"
    with pytest.raises(KeyError, match="several search spaces"):
        summary.winner_for(wifi)


def test_summarize_campaign_is_order_independent(campaign_outcomes):
    forward = summarize_campaign(campaign_outcomes).to_dict()
    backward = summarize_campaign(reversed(campaign_outcomes)).to_dict()
    assert forward == backward


def test_summarize_campaign_requires_metric_pair(campaign_outcomes):
    with pytest.raises(ValueError, match="exactly two metrics"):
        summarize_campaign(campaign_outcomes, metrics=("error_percent",))


def test_campaign_summary_section(campaign_outcomes):
    summary = summarize_campaign(campaign_outcomes)
    text = ExperimentReport().add_campaign_summary(summary).render_markdown()
    assert "Campaign summary" in text
    assert "**5** stored runs over **2** scenario/space contexts" in text
    assert "Winners (largest combined-frontier share)" in text
    assert "| wifi-3mbps/jetson-tx2-gpu | lens-vgg | lens |" in text


def test_front_history_section_golden_output():
    """The hypervolume-vs-iteration section renders byte-for-byte stably."""
    history = compute_front_history(
        np.array([[1.0, 3.0], [3.0, 3.0], [2.0, 2.0], [3.0, 1.0]]),
        ("error_percent", "energy_j"),
        reference=[4.0, 4.0],
        labels=["m0", "m1", "m2", "m3"],
        iterations=[0, 1, 2, 3],
    )
    text = ExperimentReport().add_front_history(history).render_markdown()
    assert text == (
        "# LENS reproduction report\n"
        "\n"
        "\n"
        "\n"
        "## Hypervolume vs. iteration\n"
        "\n"
        "Reference point (per objective error_percent / energy_j): "
        "4.0000, 4.0000. Final hypervolume **6.0000** with a front of **3** "
        "after **4** evaluations.\n"
        "\n"
        "| evaluation | iteration | joined | front size | hypervolume |\n"
        "|---|---|---|---|---|\n"
        "| 0 | 0 | m0 | 1 | 3.000 |\n"
        "| 2 | 2 | m2 | 2 | 5.000 |\n"
        "| 3 | 3 | m3 | 3 | 6.000 |\n"
    )


def test_front_history_section_with_no_entries():
    empty = FrontHistory(metrics=("a", "b"), reference=(), entries=())
    text = ExperimentReport().add_front_history(empty).render_markdown()
    assert "No evaluations recorded." in text


def test_campaign_summary_includes_hypervolume_table_when_recorded():
    wifi = "wifi-3mbps/jetson-tx2-gpu"
    with_history = outcome(wifi, "lens", [
        candidate("a", 20.0, 200.0), candidate("b", 25.0, 150.0)
    ])
    with_history.front_history = compute_front_history(
        np.array([[20.0, 0.2], [25.0, 0.15]]), ("error_percent", "energy_j")
    )
    summary = summarize_campaign([with_history])
    cell = summary.cells[0]
    assert cell.final_hypervolume == pytest.approx(
        with_history.front_history.final_hypervolume
    )
    assert cell.to_dict()["final_hypervolume"] == cell.final_hypervolume
    headers, rows = summary.hypervolume_table()
    assert headers[-1] == "mean final hypervolume"
    assert len(rows) == 1
    text = ExperimentReport().add_campaign_summary(summary).render_markdown()
    assert "Final hypervolume (per-run reference boxes)" in text


def test_campaign_summary_omits_hypervolume_table_without_telemetry(
    campaign_outcomes,
):
    summary = summarize_campaign(campaign_outcomes)
    assert all(cell.final_hypervolume is None for cell in summary.cells)
    assert summary.hypervolume_table()[1] == []
    assert "final_hypervolume" not in summary.cells[0].to_dict()
    text = ExperimentReport().add_campaign_summary(summary).render_markdown()
    assert "Final hypervolume" not in text


def test_full_report_round_trip(tmp_path, lens_result, baseline_result):
    report = (
        ExperimentReport(title="Custom reproduction")
        .add_text("Setup", "WiFi at 3 Mbps, TX2-GPU.")
        .add_search_summary(lens_result)
        .add_front_comparison(compare_fronts(lens_result, baseline_result))
    )
    path = report.write(tmp_path / "report" / "experiments.md")
    content = path.read_text()
    assert content.startswith("# Custom reproduction")
    assert content.count("## ") == 3
    assert report.num_sections == 3
