"""Seeded regressions: the incremental surrogate path selects seed-identical candidates.

``tests/data/golden_incremental_sequences.json`` was generated with the
pre-incremental code (cold per-model GP refits every iteration).  These tests
assert that the shared-Cholesky bank — in both its ``"incremental"`` fast
mode and its ``"exact-refit"`` fallback — drives seeded searches through the
*identical* candidate sequences, i.e. the perf rework changed no decisions.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import run_search
from repro.optim.mobo import MultiObjectiveBayesianOptimizer

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_incremental_sequences.json"

GRID = 21


def _sample(rng):
    return np.array([rng.integers(0, GRID), rng.integers(0, GRID)])


def _features(candidate):
    return np.asarray(candidate, dtype=float) / (GRID - 1)


def _objectives(candidate):
    x = np.asarray(candidate, dtype=float) / (GRID - 1)
    return np.array([x[0], (1 + x[1]) * (1 - np.sqrt(x[0] / (1 + x[1])))]), {}


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def _synthetic_run(acquisition, seed, iterations, pool, refresh=0, gp_update=None):
    return MultiObjectiveBayesianOptimizer(
        sample_fn=_sample,
        feature_fn=_features,
        objective_fn=_objectives,
        num_objectives=2,
        num_initial=6,
        num_iterations=iterations,
        candidate_pool_size=pool,
        acquisition=acquisition,
        optimize_lengthscale_every=refresh,
        gp_update=gp_update,
        seed=seed,
    ).run()


@pytest.mark.parametrize("acquisition", ["ts", "ucb", "mean"])
@pytest.mark.parametrize("gp_update", ["incremental", "exact-refit"])
def test_synthetic_sequences_match_pre_incremental_seed(golden, acquisition, gp_update):
    result = _synthetic_run(acquisition, seed=7, iterations=12, pool=40, gp_update=gp_update)
    expected = golden["synthetic"][acquisition]
    assert [list(map(int, p.candidate)) for p in result.points] == expected["candidates"]
    assert np.allclose(
        [[float(v) for v in p.objectives] for p in result.points],
        expected["objectives"],
    )


def test_lengthscale_refresh_sequence_matches_pre_incremental_seed(golden):
    result = _synthetic_run("ts", seed=11, iterations=10, pool=32, refresh=3)
    expected = golden["synthetic"]["ts_refresh"]
    assert [list(map(int, p.candidate)) for p in result.points] == expected["candidates"]


def test_run_search_candidate_sequence_matches_pre_incremental_seed(golden):
    """End-to-end: run_search on defaults explores the identical genotypes."""
    outcome = run_search(
        strategy="lens",
        scenario="wifi-3mbps/jetson-tx2-gpu",
        num_initial=4,
        num_iterations=6,
        candidate_pool_size=16,
        predictor_samples_per_type=40,
        seed=123,
    )
    expected = golden["run_search"]["lens_seed123"]
    assert [list(map(int, c.genotype)) for c in outcome.candidates] == expected["genotypes"]
    got_objectives = [
        [c.error_percent, c.latency_s, c.energy_j] for c in outcome.candidates
    ]
    assert np.allclose(got_objectives, expected["objectives"], rtol=1e-9, atol=1e-12)
