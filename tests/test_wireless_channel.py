"""Tests for the wireless channel cost model (paper Eq. 3-6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.wireless.channel import WirelessChannel


def test_transmission_latency_matches_equation_5():
    channel = WirelessChannel.create("wifi", uplink_mbps=3.0, round_trip_s=0.02)
    # 147 kB over 3 Mbps
    num_bytes = 224 * 224 * 3
    expected = num_bytes * 8 / 3e6
    assert channel.transmission_latency_s(num_bytes) == pytest.approx(expected)


def test_communication_latency_adds_round_trip():
    channel = WirelessChannel.create("wifi", uplink_mbps=10.0, round_trip_s=0.05)
    assert channel.communication_latency_s(1000) == pytest.approx(
        channel.transmission_latency_s(1000) + 0.05
    )


def test_energy_matches_equation_6():
    channel = WirelessChannel.create("lte", uplink_mbps=5.0)
    num_bytes = 50_000
    expected = channel.transmission_power_w() * channel.transmission_latency_s(num_bytes)
    assert channel.communication_energy_j(num_bytes) == pytest.approx(expected)
    assert channel.transmission_power_w() == pytest.approx(0.43839 * 5 + 1.28804)


def test_cost_bundles_all_terms():
    channel = WirelessChannel.create("wifi", uplink_mbps=8.0, round_trip_s=0.01)
    cost = channel.cost(10_000)
    assert cost.latency_s == pytest.approx(cost.transmission_latency_s + 0.01)
    assert cost.energy_j == pytest.approx(channel.transmission_energy_j(10_000))


def test_zero_bytes_costs_only_round_trip():
    channel = WirelessChannel.create("wifi", uplink_mbps=8.0, round_trip_s=0.01)
    cost = channel.cost(0)
    assert cost.transmission_latency_s == 0.0
    assert cost.energy_j == 0.0
    assert cost.latency_s == pytest.approx(0.01)


def test_with_uplink_changes_only_throughput():
    channel = WirelessChannel.create("wifi", uplink_mbps=3.0, round_trip_s=0.02)
    faster = channel.with_uplink(30.0)
    assert faster.uplink_mbps == 30.0
    assert faster.round_trip_s == 0.02
    assert faster.technology == "wifi"
    assert faster.transmission_latency_s(1000) < channel.transmission_latency_s(1000)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        WirelessChannel.create("wifi", uplink_mbps=0.0)
    with pytest.raises(ValueError):
        WirelessChannel.create("wifi", uplink_mbps=1.0, round_trip_s=-0.1)
    channel = WirelessChannel.create("wifi", uplink_mbps=1.0)
    with pytest.raises(ValueError):
        channel.transmission_latency_s(-1)


def test_to_dict_round_trip_fields():
    data = WirelessChannel.create("lte", 7.5, 0.015).to_dict()
    assert data["technology"] == "lte"
    assert data["uplink_mbps"] == 7.5
    assert data["round_trip_s"] == 0.015


@settings(max_examples=40, deadline=None)
@given(
    tu=st.floats(min_value=0.1, max_value=100.0),
    num_bytes=st.integers(min_value=1, max_value=10_000_000),
)
def test_property_latency_decreases_with_throughput_and_increases_with_size(tu, num_bytes):
    slow = WirelessChannel.create("wifi", uplink_mbps=tu)
    fast = WirelessChannel.create("wifi", uplink_mbps=tu * 2)
    assert fast.transmission_latency_s(num_bytes) < slow.transmission_latency_s(num_bytes)
    assert slow.transmission_latency_s(num_bytes * 2) > slow.transmission_latency_s(num_bytes)
