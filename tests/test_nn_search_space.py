"""Tests for the LENS VGG-derived search space (paper Fig. 4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.search_space import LensSearchSpace


class TestSpaceDefinition:
    def test_default_matches_paper_figure_4(self):
        space = LensSearchSpace()
        assert space.num_blocks == 5
        assert space.layers_per_block == (1, 2, 3)
        assert space.kernel_sizes == (3, 5, 7)
        assert space.filter_counts == (24, 36, 64, 96, 128, 256)
        assert space.fc_units == (256, 512, 1024, 2048, 4096, 8192)
        assert space.min_pool_layers == 4

    def test_gene_count(self):
        # 5 blocks * 4 genes + 4 fully-connected genes.
        assert LensSearchSpace().num_genes == 24

    def test_total_combinations_is_large(self):
        assert LensSearchSpace().total_combinations() > 1e9

    def test_rejects_impossible_pool_constraint(self):
        with pytest.raises(ValueError):
            LensSearchSpace(num_blocks=3, min_pool_layers=4)


class TestValidityAndSampling:
    def test_sampled_genotypes_are_valid(self, search_space, rng):
        for _ in range(50):
            genotype = search_space.sample(rng)
            assert search_space.is_valid(genotype)
            assert search_space.pool_count(genotype) >= 4

    def test_repair_fixes_pooling_and_fc(self, search_space, rng):
        genotype = search_space.sample(rng)
        values = search_space.encoding.values(genotype)
        values.update({f"block{i}_pool": False for i in range(1, 6)})
        values["fc1_present"] = False
        values["fc2_present"] = False
        broken = search_space.encoding.indices_from_values(values)
        assert not search_space.is_valid(broken)
        repaired = search_space.repair(broken, rng)
        assert search_space.is_valid(repaired)

    def test_sample_batch_shape(self, search_space, rng):
        batch = search_space.sample_batch(7, rng)
        assert batch.shape == (7, search_space.num_genes)

    def test_neighbours_are_valid(self, search_space, rng):
        genotype = search_space.sample(rng)
        neighbours = search_space.neighbours(genotype, 10, rng)
        assert neighbours.shape == (10, search_space.num_genes)
        for neighbour in neighbours:
            assert search_space.is_valid(neighbour)

    def test_sampling_is_seed_deterministic(self, search_space):
        a = search_space.sample(123)
        b = search_space.sample(123)
        assert np.array_equal(a, b)


class TestDecoding:
    def test_decode_respects_constraints(self, search_space, rng):
        genotype = search_space.sample(rng)
        arch = search_space.decode_for_accuracy(genotype)
        assert arch.count_layers("pool") >= 4
        assert arch.count_layers("fc") >= 2  # at least one hidden FC plus classifier
        assert arch.output_shape == (10,)
        assert arch.input_shape == (3, 32, 32)

    def test_decode_for_performance_uses_224_input(self, search_space, rng):
        genotype = search_space.sample(rng)
        arch = search_space.decode_for_performance(genotype)
        assert arch.input_shape == (3, 224, 224)
        assert arch.input_bytes == 224 * 224 * 3

    def test_decode_rejects_invalid_genotype(self, search_space, rng):
        genotype = search_space.sample(rng)
        values = search_space.encoding.values(genotype)
        values.update({f"block{i}_pool": False for i in range(1, 6)})
        broken = search_space.encoding.indices_from_values(values)
        with pytest.raises(ValueError):
            search_space.decode(broken)

    def test_decoded_conv_layers_use_batch_norm_and_relu(self, search_space, rng):
        genotype = search_space.sample(rng)
        arch = search_space.decode_for_accuracy(genotype)
        conv_layers = [l for l in arch.layers if l.layer_type == "conv"]
        assert all(l.batch_norm for l in conv_layers)
        assert all(l.activation == "relu" for l in conv_layers)
        assert arch.layers[-1].activation == "softmax"

    def test_candidate_name_is_deterministic(self, search_space, rng):
        genotype = search_space.sample(rng)
        assert search_space.candidate_name(genotype) == search_space.candidate_name(genotype)

    def test_features_live_in_unit_cube(self, search_space, rng):
        genotype = search_space.sample(rng)
        features = search_space.to_features(genotype)
        assert features.shape == (search_space.num_genes,)
        assert np.all(features >= 0) and np.all(features <= 1)

    def test_block_structure_matches_genotype(self, search_space):
        values = {
            "block1_layers": 2, "block1_kernel": 5, "block1_filters": 64, "block1_pool": True,
            "block2_layers": 1, "block2_kernel": 3, "block2_filters": 24, "block2_pool": True,
            "block3_layers": 3, "block3_kernel": 7, "block3_filters": 128, "block3_pool": True,
            "block4_layers": 1, "block4_kernel": 3, "block4_filters": 96, "block4_pool": True,
            "block5_layers": 1, "block5_kernel": 3, "block5_filters": 256, "block5_pool": False,
            "fc1_present": True, "fc1_units": 1024, "fc2_present": False, "fc2_units": 256,
        }
        genotype = search_space.encoding.indices_from_values(values)
        arch = search_space.decode_for_accuracy(genotype)
        assert arch.count_layers("conv") == 8
        assert arch.count_layers("pool") == 4
        names = [l.name for l in arch.layers if l.layer_type == "fc"]
        assert names == ["fc1", "classifier"]
        first_block = [l for l in arch.layers if l.name.startswith("conv1_")]
        assert len(first_block) == 2
        assert first_block[0].kernel_size == 5
        assert first_block[0].out_channels == 64


class TestSerialization:
    def test_round_trip(self):
        space = LensSearchSpace(num_blocks=4, min_pool_layers=3, num_classes=7)
        rebuilt = LensSearchSpace.from_dict(space.to_dict())
        assert rebuilt.num_blocks == 4
        assert rebuilt.min_pool_layers == 3
        assert rebuilt.num_classes == 7
        assert rebuilt.num_genes == space.num_genes

    def test_describe_mentions_constraints(self):
        assert "pooling" in LensSearchSpace().describe()


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_property_every_sampled_genotype_decodes_to_consistent_architecture(seed):
    space = LensSearchSpace()
    genotype = space.sample(seed)
    arch = space.decode_for_accuracy(genotype)
    # Shape inference succeeds and the model ends in the classifier.
    assert arch.output_shape == (10,)
    # Pool constraint carries through decoding.
    assert arch.count_layers("pool") >= space.min_pool_layers
    # The accuracy and performance decodings share the same topology.
    perf = space.decode_for_performance(genotype)
    assert [l.name for l in perf.layers] == [l.name for l in arch.layers]
